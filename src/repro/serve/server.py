"""DatasetServer: the multi-tenant Tensor Streaming Server.

One server hosts N datasets (each a storage backend) and answers protocol
requests from many concurrent clients.  The design mirrors what turns a
storage *format* into a serving *platform* (§5's streaming engine put
behind a shared front door):

- **Shared chunk cache** — one byte-budgeted LRU across all hosted
  datasets and tenants, so a hot chunk fetched for tenant A is served
  from memory to tenants B..Z.  Keys are namespaced ``dataset\\x00key``
  through a mux provider so the existing :class:`LRUCache` (now
  thread-safe) does the bookkeeping.
- **Single-flight dedup** — concurrent requests for the same chunk join
  one in-flight backend GET instead of issuing N; followers are counted
  as *coalesced*.
- **Request coalescing** — byte-range requests are served by caching the
  *full* chunk once and slicing in memory, so a storm of sub-range reads
  against an 8 MB chunk costs one backend GET (blobs larger than the
  cache budget fall back to direct ranged reads).  ``get_many`` batches
  several keys into one round trip.
- **Admission control + per-tenant stats** — in-flight request limits per
  tenant and globally; rejected requests fail fast with
  :class:`~repro.exceptions.AdmissionError` rather than queueing without
  bound.
- **Sample batching** — the ``read_batch`` op serves whole decoded
  samples: the server opens the hosted dataset once, plans the request
  through :meth:`~repro.core.chunk_engine.ChunkEngine.read_batch`
  (one fetch + one decompress per chunk, reading through the shared
  cache), and ships all rows back in a single response — so a remote
  client gets chunk-granular amortization over the wire instead of one
  round trip per sample.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import (
    AdmissionError,
    KeyNotFound,
    ReadOnlyStorageError,
    ServeError,
    UnknownDatasetError,
    UnknownServerError,
)
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.serve.protocol import OPS, Request, Response, error_response
from repro.serve.transport import (
    InprocTransport,
    ThreadedTransport,
    Transport,
)
from repro.storage.lru_cache import LRUCache
from repro.storage.memory import MemoryProvider
from repro.storage.provider import StorageProvider, clamp_range

_SEP = "\x00"  # dataset/key namespace separator inside the shared cache

DEFAULT_CACHE_BYTES = 128 * 1024 * 1024


def _mux_key(dataset: str, key: str) -> str:
    return f"{dataset}{_SEP}{key}"


class _BackendMux(StorageProvider):
    """Routes namespaced cache misses to the owning dataset's backend."""

    def __init__(self, server: "DatasetServer"):
        super().__init__()
        self.server = server

    def _split(self, key: str):
        dataset, _, raw = key.partition(_SEP)
        return self.server._backend(dataset), raw

    def _get(self, key, start, end):
        backend, raw = self._split(key)
        return backend.get_bytes(raw, start, end)

    def _set(self, key, value):
        backend, raw = self._split(key)
        backend[raw] = value

    def _delete(self, key):
        backend, raw = self._split(key)
        del backend[raw]

    def _all_keys(self):
        keys = set()
        for name, backend in self.server._datasets_snapshot().items():
            keys |= {_mux_key(name, k) for k in backend._all_keys()}
        return keys

    def get_many(self, keys: Sequence[str]):
        """Batched misses: one backend get_many per owning dataset."""
        by_dataset: Dict[str, List[str]] = {}
        for key in keys:
            dataset, _, raw = key.partition(_SEP)
            by_dataset.setdefault(dataset, []).append(raw)
        out: Dict[str, bytes] = {}
        for dataset, raws in by_dataset.items():
            backend = self.server._backend(dataset)
            for raw, blob in backend.get_many(raws).items():
                self.stats.record_get(len(blob))
                out[_mux_key(dataset, raw)] = blob
        return out


class _ServeView(StorageProvider):
    """Read-only storage view the server's sample-serving Datasets use.

    Whole-blob reads (chunks, meta, encoders) go through the server's
    shared cache with single-flight dedup; batched reads ride the cache's
    ``get_many`` so a ReadPlan's misses reach the backend in one call;
    ranged reads slice a cached blob when resident and otherwise pass
    through to the backend without polluting the cache.
    """

    def __init__(self, server: "DatasetServer", dataset: str):
        super().__init__()
        self.server = server
        self.dataset = dataset
        self.read_only = True

    def _get(self, key, start, end):
        server = self.server
        mkey = _mux_key(self.dataset, key)
        ranged = start is not None or end is not None
        if server.cache is None or mkey in server._oversize:
            return server._backend(self.dataset).get_bytes(key, start, end)
        if ranged and not server.cache.is_cached(mkey):
            return server._backend(self.dataset).get_bytes(key, start, end)
        blob, _outcome = server._full_blob(mkey)
        if not ranged:
            return blob
        s, e = clamp_range(len(blob), start, end)
        return blob[s:e]

    def get_many(self, keys: Sequence[str]):
        server = self.server
        if server.cache is None:
            blobs = server._backend(self.dataset).get_many(keys)
        else:
            mux = server._batched_blobs(
                [_mux_key(self.dataset, k) for k in keys]
            )
            blobs = {
                key.partition(_SEP)[2]: blob for key, blob in mux.items()
            }
        for blob in blobs.values():
            self.stats.record_get(len(blob))
        return blobs

    def _set(self, key, value):
        raise ReadOnlyStorageError("served dataset views are read-only")

    def _delete(self, key):
        raise ReadOnlyStorageError("served dataset views are read-only")

    def _all_keys(self):
        return self.server._backend(self.dataset)._all_keys()


class TenantStats:
    """Per-tenant serving counters, registry-backed.

    Exact per-tenant counts live in standalone thread-safe
    :class:`~repro.obs.metrics.Counter` objects (one set per instance,
    so ``snapshot()`` stays exact per server), and every event also
    increments the global ``serve.<field>{server,tenant}`` series — the
    per-tenant decoded-chunk hit/miss numbers are a labeled view of the
    same accounting, not a third hand-rolled copy of the engine's.
    """

    FIELDS = ("requests", "rejected", "bytes_in", "bytes_out",
              "cache_hits", "cache_misses", "coalesced", "samples_served",
              "chunk_cache_hits", "chunk_cache_misses")

    __slots__ = ("_exact", "_mirror")

    def __init__(self, server: str = "", tenant: str = "default"):
        reg = _metrics.REGISTRY
        self._exact = {f: _metrics.Counter(reg) for f in self.FIELDS}
        self._mirror = {
            f: reg.counter(f"serve.{f}", server=server, tenant=tenant)
            for f in self.FIELDS
        }

    def inc(self, name: str, n: int = 1) -> None:
        self._exact[name].inc(n)
        self._mirror[name].inc(n)

    def __getattr__(self, name: str) -> int:
        exact = object.__getattribute__(self, "_exact")
        if name in exact:
            return exact[name].value
        raise AttributeError(name)

    def snapshot(self) -> dict:
        return {name: self._exact[name].value for name in self.FIELDS}


class _Flight:
    """One in-flight backend fetch that followers can join.

    ``stale`` is set by a concurrent put/delete: the fetch started before
    the write, so whatever it caches must be dropped once it lands.
    """

    __slots__ = ("event", "value", "exc", "stale")

    def __init__(self):
        self.event = threading.Event()
        self.value: Optional[bytes] = None
        self.exc: Optional[BaseException] = None
        self.stale = False


class DatasetServer:
    """Hosts datasets behind the serve protocol (thread-safe)."""

    def __init__(
        self,
        name: str = "local",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_inflight_per_tenant: int = 64,
        max_inflight_total: int = 512,
    ):
        self.name = name
        self._datasets: Dict[str, StorageProvider] = {}
        self._datasets_lock = threading.Lock()
        self.cache: Optional[LRUCache] = (
            LRUCache(
                MemoryProvider(f"{name}-serve-cache"),
                _BackendMux(self),
                cache_bytes,
                name=f"{name}-serve",
            )
            if cache_bytes
            else None
        )
        self.max_inflight_per_tenant = int(max_inflight_per_tenant)
        self.max_inflight_total = int(max_inflight_total)
        self._admission_lock = threading.Lock()
        self._inflight_by_tenant: Dict[str, int] = {}
        self._total_inflight = 0
        self._stats_lock = threading.Lock()
        self._tenants: Dict[str, TenantStats] = {}
        self._flights: Dict[str, _Flight] = {}
        self._flight_lock = threading.Lock()
        # lazily-opened Dataset views used by the read_batch sample op
        self._served_views: Dict[str, object] = {}
        self._views_lock = threading.Lock()
        self._oversize: Set[str] = set()  # mux keys too big for the cache
        self._transport: Optional[Transport] = None
        self._running = False
        # (op, tenant) -> serve.request_seconds histogram handle
        self._op_hists: Dict[Tuple[str, str], object] = {}
        # server-push prefetch: per-(tenant, dataset, tensors) stride
        # trackers + speculative-fetch accounting (units are chunks)
        self._prefetch_lock = threading.Lock()
        self._prefetch_trackers: Dict[Tuple[str, str, Tuple[str, ...]], dict] = {}
        self._prefetch_futures: List[object] = []
        reg = _metrics.REGISTRY
        self._prefetch_exact = {
            f: _metrics.Counter(reg) for f in ("issued", "hits", "wasted")
        }
        self._prefetch_mirror = {
            f: reg.counter(f"serve.prefetch_{f}", server=name)
            for f in ("issued", "hits", "wasted")
        }

    # ------------------------------------------------------------------ #
    # hosting / lifecycle
    # ------------------------------------------------------------------ #

    def add_dataset(
        self, name: str, storage: Union[str, StorageProvider]
    ) -> "DatasetServer":
        """Host *storage* (provider or URL) under ``serve://<server>/<name>``."""
        if isinstance(storage, str):
            from repro.storage.router import storage_from_url

            # the shared server cache is the caching tier; talk to the
            # backend raw so request accounting stays truthful
            storage = storage_from_url(storage, cache_bytes=0)
        with self._datasets_lock:
            if name in self._datasets:
                raise ServeError(f"dataset {name!r} is already being served")
            self._datasets[name] = storage
        return self

    def remove_dataset(self, name: str) -> None:
        with self._datasets_lock:
            self._datasets.pop(name, None)
        with self._views_lock:
            self._served_views.pop(name, None)

    def _served_dataset(self, name: str):
        """Dataset view over a hosted backend, reading through the shared
        cache; opened once and reused by every read_batch request."""
        with self._views_lock:
            ds = self._served_views.get(name)
            if ds is None:
                from repro.core.dataset import Dataset

                self._backend(name)  # raise UnknownDatasetError early
                ds = Dataset(_ServeView(self, name), read_only=True)
                self._served_views[name] = ds
            return ds

    def _backend(self, name: str) -> StorageProvider:
        with self._datasets_lock:
            try:
                return self._datasets[name]
            except KeyError:
                raise UnknownDatasetError(
                    f"server {self.name!r} does not host dataset {name!r}; "
                    f"hosted: {sorted(self._datasets)}"
                ) from None

    def _datasets_snapshot(self) -> Dict[str, StorageProvider]:
        with self._datasets_lock:
            return dict(self._datasets)

    def start(self, num_workers: int = 4) -> "DatasetServer":
        """Register in the process-wide server registry and spin up the
        threaded server loop (making ``serve://<name>/...`` resolvable)."""
        if self._running:
            return self
        register_server(self)  # before spawning workers: a duplicate name
        try:                   # must not leak a half-started transport
            self._transport = ThreadedTransport(
                self,
                num_workers=num_workers,
                max_pending=self.max_inflight_total,
            )
        except BaseException:
            unregister_server(self)
            raise
        self._running = True
        return self

    def stop(self) -> None:
        """Unregister and shut the server loop down, cancelling queued
        requests (blocked clients get a ServeError, never a deadlock)."""
        unregister_server(self)
        self._running = False
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def __enter__(self) -> "DatasetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def connect(
        self,
        dataset: str,
        tenant: str = "default",
        transport: Optional[Transport] = None,
    ):
        """A :class:`RemoteStorageProvider` for one hosted dataset."""
        from repro.serve.client import RemoteStorageProvider

        if transport is None:
            transport = self._transport or InprocTransport(self)
        return RemoteStorageProvider(transport, dataset, tenant=tenant)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def handle(self, req: Request) -> Response:
        """Serve one request (safe to call from many threads).

        When the request carries a trace context, the whole dispatch is
        recorded as a detached span tree (server → cache → backend) and
        shipped back on ``resp.trace`` for the client to graft — one
        served ``read_batch`` renders as a single stitched trace.
        """
        tenant = self._tenant(req.tenant)
        try:
            self._admit(req.tenant)
        except AdmissionError as e:
            tenant.inc("rejected")
            return error_response(e)
        root = None
        if req.trace_id:
            root = _tracing.remote_child(
                req.trace_id, req.parent_span, f"server.{req.op}",
                server=self.name, tenant=req.tenant, dataset=req.dataset,
            )
            root.__enter__()
        t0 = time.perf_counter()
        try:
            tenant.inc("requests")
            resp = self._dispatch(req, tenant)
        except BaseException as e:  # noqa: BLE001 - errors go on the wire
            resp = error_response(e)
        finally:
            self._release(req.tenant)
            if root is not None:
                root.__exit__(None, None, None)
        self._op_histogram(req.op, req.tenant).observe(
            time.perf_counter() - t0
        )
        if root is not None:
            resp.trace = root.to_dict()
        tenant.inc("bytes_out", resp.nbytes())
        tenant.inc("bytes_in", req.nbytes())
        return resp

    def _op_histogram(self, op: str, tenant: str):
        """Per-op/per-tenant request latency histogram handle (cached)."""
        key = (op, tenant)
        h = self._op_hists.get(key)
        if h is None:
            h = self._op_hists[key] = _metrics.histogram(
                "serve.request_seconds", server=self.name, op=op,
                tenant=tenant,
            )
        return h

    def _dispatch(self, req: Request, tenant: TenantStats) -> Response:
        if req.op == "get":
            return Response(data=self._serve_get(req, tenant))
        if req.op == "get_many":
            blobs = {}
            for key in req.keys:
                sub = Request(op="get", tenant=req.tenant,
                              dataset=req.dataset, key=key)
                try:
                    blobs[key] = self._serve_get(sub, tenant)
                except KeyNotFound:
                    continue  # batch semantics: return the keys that exist
            return Response(blobs=blobs)
        if req.op == "read_batch":
            return self._serve_read_batch(req, tenant)
        if req.op == "put":
            backend = self._backend(req.dataset)
            backend[req.key] = req.payload
            self._invalidate(req.dataset, req.key)
            return Response()
        if req.op == "put_many":
            backend = self._backend(req.dataset)
            # one backend batch write, in the client's key order (the
            # crash-consistent flush ordering survives the round trip)
            backend.set_many(dict(req.blobs))
            for key in req.blobs:
                self._invalidate(req.dataset, key)
            return Response()
        if req.op == "delete":
            backend = self._backend(req.dataset)
            del backend[req.key]
            self._invalidate(req.dataset, req.key)
            return Response()
        if req.op == "keys":
            backend = self._backend(req.dataset)
            return Response(keys=tuple(backend.list_prefix("")))
        if req.op == "flush":
            self._backend(req.dataset).flush()
            return Response()
        if req.op == "stats":
            return Response(info=self.stats_snapshot())
        if req.op == "ping":
            return Response(info={
                "server": self.name,
                "datasets": sorted(self._datasets_snapshot()),
            })
        raise ServeError(f"unknown op {req.op!r}; expected one of {OPS}")

    # -- GET path ---------------------------------------------------------

    def _serve_get(self, req: Request, tenant: TenantStats) -> bytes:
        backend = self._backend(req.dataset)
        mkey = _mux_key(req.dataset, req.key)
        ranged = req.start is not None or req.end is not None
        if self.cache is None or (ranged and mkey in self._oversize):
            # no cache tier / known-oversize blob: direct (ranged) read
            data = backend.get_bytes(req.key, req.start, req.end)
            tenant.inc("cache_misses")
            return data
        blob, outcome = self._full_blob(mkey)
        if outcome == "hit":
            tenant.inc("cache_hits")
        elif outcome == "coalesced":
            tenant.inc("cache_hits")
            tenant.inc("coalesced")
        else:
            tenant.inc("cache_misses")
        if not ranged:
            return blob
        s, e = clamp_range(len(blob), req.start, req.end)
        return blob[s:e]

    def _full_blob(self, mkey: str) -> tuple:
        """Whole blob for *mkey* with single-flight miss deduplication.

        Returns ``(blob, outcome)`` where outcome is ``"hit"`` (cache),
        ``"coalesced"`` (joined another request's in-flight fetch) or
        ``"miss"`` (this request paid the backend GET).
        """
        cache = self.cache
        if cache.is_cached(mkey):
            try:
                return cache[mkey], "hit"
            except KeyNotFound:
                pass  # raced an eviction + backend delete; refetch below
        with self._flight_lock:
            flight = self._flights.get(mkey)
            leader = flight is None
            if leader:
                flight = self._flights[mkey] = _Flight()
        if not leader:
            flight.event.wait()
            if flight.stale:
                # a write completed while that fetch was in flight; a get
                # issued after the write ack must not see the old bytes
                return self._full_blob(mkey)
            if flight.exc is not None:
                raise flight.exc
            return flight.value, "coalesced"
        try:
            value = cache[mkey]  # miss path fetches from the backend mux
            if len(value) > cache.cache_size:
                self._oversize.add(mkey)
            flight.value = value
            return value, "miss"
        except BaseException as e:
            flight.exc = e
            raise
        finally:
            with self._flight_lock:
                self._flights.pop(mkey, None)
                stale = flight.stale
            if stale:
                # a put/delete raced this fetch: the blob we just cached
                # predates the write, so it must not be served again
                cache.invalidate(mkey)
            flight.event.set()

    def _serve_read_batch(self, req: Request, tenant: TenantStats) -> Response:
        """Decoded samples for many rows in one round trip.

        The hosted dataset is read through the shared chunk cache, so the
        ReadPlan's chunk fetches land once per chunk server-wide; the
        engine's decoded-chunk hit/miss delta is surfaced per tenant.
        When the request names several tensors, their plans are fused so
        every column's misses reach the backend in ONE ``get_many``; each
        request also feeds the per-tenant stride tracker that drives
        server-push prefetch of the next sequential window.
        """
        import numpy as np

        from repro.core.chunk_engine import (
            FusedReadPlan,
            read_pipeline_enabled,
        )

        ds = self._served_dataset(req.dataset)
        names = tuple(req.tensors) or (req.tensor,)
        rows = list(req.rows)
        # always plan + execute (even for one row): serving wants chunks
        # resident in the shared cache for the tenants that come next,
        # and residency is computed per request, not as a delta on shared
        # counters — concurrent tenants must not claim each other's I/O
        hits = misses = 0
        plans = []
        for name in names:
            engine = ds._engine(name)
            plan = engine.plan_reads(rows)
            h, m = engine.plan_residency(plan)
            hits += h
            misses += m
            plans.append((name, engine, plan))
        if read_pipeline_enabled() and len(plans) > 1:
            fused = FusedReadPlan()
            for _name, engine, plan in plans:
                fused.add(engine, plan)
            column_values = fused.execute()
        else:
            column_values = [
                engine.execute_plan(plan) for _name, engine, plan in plans
            ]
        columns = {}
        for (name, _engine, _plan), values in zip(plans, column_values):
            triples = []
            for value in values:
                if not isinstance(value, np.ndarray):
                    raise ServeError(
                        f"tensor {name!r} holds ragged sequence samples; "
                        "read_batch serves fixed ndarray samples only"
                    )
                arr = np.ascontiguousarray(value)
                triples.append(
                    (arr.dtype.str, tuple(int(x) for x in arr.shape),
                     arr.tobytes())
                )
            columns[name] = tuple(triples)
        tenant.inc("samples_served",
                   sum(len(t) for t in columns.values()))
        tenant.inc("chunk_cache_hits", hits)
        tenant.inc("chunk_cache_misses", misses)
        self._note_read_window(req.tenant, req.dataset, names, rows,
                               plans, ds)
        if req.tensors:
            return Response(columns=columns)
        return Response(samples=columns[names[0]])

    # -- server-push prefetch ---------------------------------------------

    @property
    def prefetch_issued(self) -> int:
        return self._prefetch_exact["issued"].value

    @property
    def prefetch_hits(self) -> int:
        return self._prefetch_exact["hits"].value

    @property
    def prefetch_wasted(self) -> int:
        return self._prefetch_exact["wasted"].value

    def _prefetch_inc(self, field: str, n: int = 1) -> None:
        if n:
            self._prefetch_exact[field].inc(n)
            self._prefetch_mirror[field].inc(n)

    def _note_read_window(self, tenant: str, dataset: str,
                          names: Tuple[str, ...], rows: List[int],
                          plans: list, ds) -> None:
        """Feed the stride tracker with one ``read_batch`` window.

        A tenant reading contiguous ascending windows back to back is
        *sequential*: the second consecutive window triggers speculative
        execution of the next one on the decode pool.  Chunks the tracker
        fetched ahead count as *hits* when a later request plans them and
        as *wasted* when the stride breaks with them still unclaimed.
        """
        from repro.core.chunk_engine import (
            _decode_pool,
            read_pipeline_enabled,
        )

        if self.cache is None or not rows or not read_pipeline_enabled():
            return
        start, end = rows[0], rows[-1] + 1
        sequential = rows == list(range(start, end))
        key = (tenant, dataset, names)
        current_keys: Set[str] = set()
        for _name, _engine, plan in plans:
            current_keys.update(plan.chunk_keys.values())
        hit = wasted = 0
        schedule = False
        with self._prefetch_lock:
            tr = self._prefetch_trackers.get(key)
            if tr is None:
                tr = self._prefetch_trackers[key] = {
                    "last_end": None,
                    "outstanding": set(),
                    "inflight": False,
                }
            claimed = current_keys & tr["outstanding"]
            hit = len(claimed)
            tr["outstanding"] -= claimed
            if sequential and tr["last_end"] == start:
                schedule = not tr["inflight"]
                if schedule:
                    tr["inflight"] = True
            else:
                # stride broke: whatever is still speculatively resident
                # was fetched for a future this tenant abandoned
                wasted = len(tr["outstanding"])
                tr["outstanding"].clear()
            tr["last_end"] = end if sequential else None
            if schedule:
                fut = _decode_pool().submit(
                    self._prefetch_window, key, ds, names, end, len(rows)
                )
                self._prefetch_futures = [
                    f for f in self._prefetch_futures if not f.done()
                ]
                self._prefetch_futures.append(fut)
        self._prefetch_inc("hits", hit)
        self._prefetch_inc("wasted", wasted)

    def _prefetch_window(self, key, ds, names: Tuple[str, ...],
                         start: int, count: int) -> None:
        """Speculatively fetch+decode rows ``[start, start+count)`` for
        every tensor of *key* into the shared cache (runs on the decode
        pool; nested decode parallelism degrades to inline there).
        Speculative work must never surface errors to tenants."""
        from repro.core.chunk_engine import FusedReadPlan

        issued: Set[str] = set()
        try:
            with _tracing.span("serve.push_prefetch", server=self.name,
                               rows=count, tensors=len(names)):
                fused = FusedReadPlan()
                for name in names:
                    engine = ds._engine(name)
                    n = engine.num_samples
                    rows = list(range(min(start, n), min(start + count, n)))
                    if not rows:
                        continue
                    plan = engine.plan_reads(rows)
                    _resident, to_fetch = engine._plan_resident_chunks(plan)
                    issued.update(to_fetch)
                    fused.add(engine, plan)
                if issued:
                    fused.prefetch()
        except BaseException:  # noqa: BLE001 - speculative, never propagate
            issued = set()
        finally:
            with self._prefetch_lock:
                tr = self._prefetch_trackers.get(key)
                if tr is not None:
                    tr["inflight"] = False
                    if issued:
                        tr["outstanding"] |= issued
            self._prefetch_inc("issued", len(issued))

    def drain_prefetch(self) -> None:
        """Wait for every in-flight speculative prefetch to settle (test
        hook — makes hit/waste accounting deterministic)."""
        while True:
            with self._prefetch_lock:
                futures, self._prefetch_futures = self._prefetch_futures, []
            if not futures:
                return
            for fut in futures:
                try:
                    fut.result()
                except BaseException:  # noqa: BLE001 - already swallowed
                    pass

    def _batched_blobs(self, mkeys: Sequence[str]) -> Dict[str, bytes]:
        """Whole blobs for many mux keys, with single-flight dedup.

        Cache hits come from memory; this request becomes the leader for
        every key with no fetch in flight and pays ONE downstream
        ``get_many`` for all of them, while keys another request is
        already fetching are joined as a follower — so N concurrent
        ``read_batch`` storms over the same cold chunks still cost one
        backend GET per chunk, exactly like the blob-level ``get`` path.
        Missing keys are omitted (``get_many`` semantics).
        """
        cache = self.cache
        out: Dict[str, bytes] = {}
        need: List[str] = []
        for mkey in dict.fromkeys(mkeys):
            if cache.is_cached(mkey):
                try:
                    out[mkey] = cache[mkey]
                    continue
                except KeyNotFound:
                    pass  # raced an eviction; fetch below
            need.append(mkey)
        leaders: Dict[str, _Flight] = {}
        followers: Dict[str, _Flight] = {}
        with self._flight_lock:
            for mkey in need:
                flight = self._flights.get(mkey)
                if flight is None:
                    flight = self._flights[mkey] = _Flight()
                    leaders[mkey] = flight
                else:
                    followers[mkey] = flight
        if leaders:
            stale: List[str] = []
            try:
                blobs = cache.get_many(list(leaders))
                for mkey, flight in leaders.items():
                    blob = blobs.get(mkey)
                    if blob is None:
                        flight.exc = KeyNotFound(mkey)
                        continue
                    if len(blob) > cache.cache_size:
                        self._oversize.add(mkey)
                    flight.value = blob
            except BaseException as e:  # noqa: BLE001 - settle followers
                for flight in leaders.values():
                    if flight.value is None and flight.exc is None:
                        flight.exc = e
                raise
            finally:
                with self._flight_lock:
                    for mkey, flight in leaders.items():
                        self._flights.pop(mkey, None)
                        if flight.stale:
                            stale.append(mkey)
                for mkey in stale:
                    # a put/delete raced the fetch; the cached bytes
                    # predate the write and must not be served again
                    cache.invalidate(mkey)
                for flight in leaders.values():
                    flight.event.set()
            for mkey, flight in leaders.items():
                if flight.value is not None:
                    out[mkey] = flight.value
        for mkey, flight in followers.items():
            flight.event.wait()
            if flight.stale:
                try:
                    out[mkey], _ = self._full_blob(mkey)
                except KeyNotFound:
                    continue
            elif flight.exc is not None:
                if isinstance(flight.exc, KeyNotFound):
                    continue
                raise flight.exc
            else:
                out[mkey] = flight.value
        return out

    def _invalidate(self, dataset: str, key: str) -> None:
        # a write makes any opened Dataset view's encoders/meta stale;
        # drop it and let the next read_batch reopen lazily
        with self._views_lock:
            self._served_views.pop(dataset, None)
        mkey = _mux_key(dataset, key)
        self._oversize.discard(mkey)
        with self._flight_lock:
            flight = self._flights.get(mkey)
            if flight is not None:
                flight.stale = True
        if self.cache is not None:
            self.cache.invalidate(mkey)

    # ------------------------------------------------------------------ #
    # admission + stats
    # ------------------------------------------------------------------ #

    def _tenant(self, tenant: str) -> TenantStats:
        with self._stats_lock:
            if tenant not in self._tenants:
                self._tenants[tenant] = TenantStats(self.name, tenant)
            return self._tenants[tenant]

    def _admit(self, tenant: str) -> None:
        with self._admission_lock:
            if self._total_inflight >= self.max_inflight_total:
                raise AdmissionError(
                    f"server {self.name!r} at global in-flight limit "
                    f"({self.max_inflight_total})"
                )
            current = self._inflight_by_tenant.get(tenant, 0)
            if current >= self.max_inflight_per_tenant:
                raise AdmissionError(
                    f"tenant {tenant!r} at in-flight limit "
                    f"({self.max_inflight_per_tenant}) on server {self.name!r}"
                )
            self._inflight_by_tenant[tenant] = current + 1
            self._total_inflight += 1

    def _release(self, tenant: str) -> None:
        with self._admission_lock:
            self._inflight_by_tenant[tenant] -= 1
            self._total_inflight -= 1

    def stats_snapshot(self) -> dict:
        with self._stats_lock:
            tenants = {t: s.snapshot() for t, s in self._tenants.items()}
        info = {
            "server": self.name,
            "datasets": sorted(self._datasets_snapshot()),
            "tenants": tenants,
        }
        if self.cache is not None:
            info["cache"] = {
                "used_bytes": self.cache.cache_used,
                "size_bytes": self.cache.cache_size,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_ratio": round(self.cache.hit_ratio, 4),
            }
        info["prefetch"] = {
            "issued": self.prefetch_issued,
            "hits": self.prefetch_hits,
            "wasted": self.prefetch_wasted,
        }
        return info

    def __repr__(self) -> str:
        return (
            f"DatasetServer(name={self.name!r}, "
            f"datasets={sorted(self._datasets_snapshot())}, "
            f"running={self._running})"
        )


# --------------------------------------------------------------------------- #
# process-wide server registry (what `serve://name/...` resolves against)
# --------------------------------------------------------------------------- #

_SERVERS: Dict[str, DatasetServer] = {}
_REGISTRY_LOCK = threading.Lock()


def register_server(server: DatasetServer) -> None:
    with _REGISTRY_LOCK:
        existing = _SERVERS.get(server.name)
        if existing is not None and existing is not server:
            raise ServeError(
                f"a server named {server.name!r} is already running"
            )
        _SERVERS[server.name] = server


def unregister_server(server: DatasetServer) -> None:
    with _REGISTRY_LOCK:
        if _SERVERS.get(server.name) is server:
            del _SERVERS[server.name]


def get_server(name: str) -> DatasetServer:
    with _REGISTRY_LOCK:
        try:
            return _SERVERS[name]
        except KeyError:
            running: List[str] = sorted(_SERVERS)
            raise UnknownServerError(
                f"no running server named {name!r}; running servers: "
                f"{running or 'none'} (start one with repro.serve(...))"
            ) from None


def clear_servers() -> None:
    """Test hook: stop and forget every running server."""
    with _REGISTRY_LOCK:
        servers = list(_SERVERS.values())
        _SERVERS.clear()
    for server in servers:
        server._running = False
        if server._transport is not None:
            server._transport.close()
            server._transport = None
