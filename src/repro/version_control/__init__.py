"""Version control built into the format (§4.2): commit tree, branch
locks, commit/checkout/diff/merge operations."""

from repro.version_control.tree import CommitNode, VersionTree
from repro.version_control.locks import BranchLock
from repro.version_control.operations import (
    accumulate_changes,
    checkout,
    commit,
    diff,
    log,
    merge,
)

__all__ = [
    "CommitNode",
    "VersionTree",
    "BranchLock",
    "commit",
    "checkout",
    "diff",
    "log",
    "merge",
    "accumulate_changes",
]
