"""Commit / checkout / branch / diff / merge operations (§4.2).

These functions operate on a :class:`~repro.core.dataset.Dataset` through a
narrow internal surface (its engines, version tree and version state), so
the dataset class stays thin.  Semantics follow the paper and the
reference product:

- every branch has a mutable *head* commit; ``commit`` seals the head and
  opens a fresh child;
- ``checkout`` to a sealed commit yields a read-only dataset (time travel);
- ``merge`` matches rows across branches by their stored sample ids and
  resolves conflicting updates "according to the policy defined by the
  user".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.core.chunk_engine import CommitDiff
from repro.exceptions import (
    CheckoutError,
    MergeConflictError,
    ReadOnlyDatasetError,
    VersionControlError,
)
from repro.util import keys as K
from repro.util.json_util import json_loads

ConflictPolicy = Union[None, str, Callable]


def commit(ds, message: str = "") -> str:
    """Seal the current head as an immutable snapshot; returns its id."""
    ds._check_writable()
    ds.flush()
    tree = ds._tree
    vs = ds.version_state
    sealed = vs.commit_id
    tree.seal(sealed, message)
    child = tree.add_child(sealed, vs.branch)
    vs.commit_id = child.commit_id
    for engine in ds._engines.values():
        engine.begin_new_commit()
    ds._write_dataset_meta()
    tree.save(ds.storage)
    return sealed


def checkout(ds, address: str, create: bool = False) -> str:
    """Move to a branch/commit; ``create=True`` forks a new branch."""
    ds.flush()
    tree = ds._tree
    vs = ds.version_state
    if create:
        if ds.read_only:
            raise ReadOnlyDatasetError("cannot create a branch on a read-only dataset")
        cur = tree.node(vs.commit_id)
        if cur.is_head:
            # seal current state so the new branch forks an immutable base
            base = commit(ds, f"auto commit before creating branch {address!r}")
        else:
            base = vs.commit_id
        node = tree.create_branch(address, base)
        vs.branch = address
        vs.commit_id = node.commit_id
        for engine in ds._engines.values():
            engine.begin_new_commit()
        ds._write_dataset_meta()
        tree.save(ds.storage)
        ds._set_commit_read_only(False)
        return node.commit_id

    node = tree.resolve(address)
    if ds._has_uncommitted_changes() and node.commit_id != vs.commit_id:
        # match the product: silently keep working state on its head; a
        # checkout away requires commit first when the head has changes
        raise CheckoutError(
            "dataset has uncommitted changes; commit() before checkout "
            f"(moving from {vs.commit_id[:12]} to {node.commit_id[:12]})"
        )
    vs.commit_id = node.commit_id
    vs.branch = node.branch
    ds._set_commit_read_only(not node.is_head)
    ds._reload_version_view()
    return node.commit_id


def log(ds) -> List:
    """Sealed commits reachable from the current version, newest first."""
    return ds._tree.log(ds.version_state.commit_id)


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def _read_commit_diff(storage, commit_id: str, tensor: str) -> Optional[CommitDiff]:
    try:
        return CommitDiff.from_json(storage[K.commit_diff_key(commit_id, tensor)])
    except KeyError:
        return None


def accumulate_changes(
    ds, head: str, ancestor: str, tensors: List[str]
) -> Dict[str, Dict]:
    """Union of per-tensor changes on the path head -> ancestor."""
    out: Dict[str, Dict] = {}
    path = ds._tree.path_to(head, ancestor)
    for tensor in tensors:
        added: List[Tuple[int, int]] = []
        updated: Set[int] = set()
        created = False
        for cid in path:
            diff = _read_commit_diff(ds.storage, cid, tensor)
            if diff is None:
                continue
            if diff.num_added:
                added.append(diff.added_range)
            updated.update(diff.updated)
            created = created or diff.created
        added.sort()
        out[tensor] = {
            "added_ranges": added,
            "num_added": sum(e - s for s, e in added),
            "updated": sorted(updated),
            "created": created,
        }
    return out


def diff(ds, target: Optional[str] = None) -> Dict:
    """Changes of the working head, or both sides vs the common ancestor."""
    vs = ds.version_state
    tensors = ds._all_tensor_names(include_hidden=False)
    if target is None:
        out = {}
        for name in tensors:
            engine = ds._engine(name)
            d = engine.commit_diff
            out[name] = {
                "added_ranges": [d.added_range] if d.num_added else [],
                "num_added": d.num_added,
                "updated": sorted(d.updated),
                "created": d.created,
            }
        return {"ours": out, "theirs": None, "lca": None}
    target_id = ds._tree.resolve(target).commit_id
    lca = ds._tree.lowest_common_ancestor(vs.commit_id, target_id)
    target_ds = ds._at_commit(target_id)
    return {
        "ours": accumulate_changes(ds, vs.commit_id, lca, tensors),
        "theirs": accumulate_changes(
            ds, target_id, lca, target_ds._all_tensor_names(include_hidden=False)
        ),
        "lca": lca,
    }


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------


def _sample_ids(ds, tensor: str) -> Optional[List[int]]:
    """Stored sample ids of *tensor* (None when the id tensor is absent)."""
    engine = ds._engine(tensor)
    id_name = engine.meta.links.get("id")
    if not id_name or id_name not in ds._all_tensor_names(include_hidden=True):
        return None
    id_engine = ds._engine(id_name)
    return [int(id_engine.read_sample(i)[()]) for i in range(id_engine.num_samples)]


def merge(
    ds,
    target: str,
    conflict_resolution: ConflictPolicy = None,
    commit_message: Optional[str] = None,
) -> str:
    """Three-way merge of *target* (branch or commit) into the current head.

    Rows are matched by sample id.  When both sides updated the same row
    since the common ancestor, ``conflict_resolution`` decides:
    ``"ours"`` keeps ours, ``"theirs"`` takes theirs, a callable
    ``fn(ours_value, theirs_value) -> value`` computes the result, and
    ``None`` raises :class:`MergeConflictError`.
    """
    ds._check_writable()
    ds.flush()
    tree = ds._tree
    vs = ds.version_state
    node = tree.resolve(target)
    target_id = node.commit_id
    if node.is_head and node.parent is not None:
        # merging a branch means merging its last *sealed* state — the
        # mutable head is an empty working node
        target_id = node.parent
    lca = tree.lowest_common_ancestor(vs.commit_id, target_id)
    if lca == target_id:
        return vs.commit_id  # target already merged

    target_ds = ds._at_commit(target_id)
    theirs_tensors = target_ds._all_tensor_names(include_hidden=False)
    theirs_changes = accumulate_changes(ds, target_id, lca, theirs_tensors)
    ours_changes = accumulate_changes(
        ds, vs.commit_id, lca, ds._all_tensor_names(include_hidden=False)
    )

    conflicts = []
    plan = []  # (tensor, action, payload...)
    for tensor in theirs_tensors:
        change = theirs_changes[tensor]
        if tensor not in ds._all_tensor_names(include_hidden=False):
            plan.append(("create_and_copy", tensor))
            continue
        ours_ids = _sample_ids(ds, tensor)
        theirs_ids = _sample_ids(target_ds, tensor)
        if ours_ids is None or theirs_ids is None:
            ours_ids = list(range(ds._engine(tensor).num_samples))
            theirs_ids = list(range(target_ds._engine(tensor).num_samples))
        ours_index = {sid: i for i, sid in enumerate(ours_ids)}
        ours_updated_ids = {
            ours_ids[i]
            for i in ours_changes.get(tensor, {}).get("updated", [])
            if i < len(ours_ids)
        }
        # new rows on their side
        for start, end in change["added_ranges"]:
            for idx in range(start, end):
                if idx >= len(theirs_ids):
                    continue
                sid = theirs_ids[idx]
                if sid not in ours_index:
                    plan.append(("append", tensor, idx, sid))
        # their updates
        for idx in change["updated"]:
            if idx >= len(theirs_ids):
                continue
            sid = theirs_ids[idx]
            if sid not in ours_index:
                continue
            ours_idx = ours_index[sid]
            if sid in ours_updated_ids:
                if conflict_resolution is None:
                    conflicts.append((tensor, sid, ours_idx, idx))
                    continue
                if conflict_resolution == "ours":
                    continue
                if conflict_resolution == "theirs":
                    plan.append(("update", tensor, idx, ours_idx))
                    continue
                plan.append(("resolve", tensor, idx, ours_idx))
            else:
                plan.append(("update", tensor, idx, ours_idx))

    if conflicts:
        raise MergeConflictError(conflicts)

    for entry in plan:
        action, tensor = entry[0], entry[1]
        if action == "create_and_copy":
            src_engine = target_ds._engine(tensor)
            ds._create_tensor_from_meta(tensor, src_engine.meta)
            src_ids = _sample_ids(target_ds, tensor)
            for i in range(src_engine.num_samples):
                value = src_engine.read_sample(i, aslist=True) \
                    if src_engine.meta.is_sequence else src_engine.read_sample(i)
                sid = src_ids[i] if src_ids else None
                ds._append_with_id(tensor, value, sample_id=sid)
        elif action == "append":
            _action, tensor, theirs_idx, sid = entry
            value = target_ds._engine(tensor).read_sample(theirs_idx)
            ds._append_with_id(tensor, value, sample_id=sid)
        elif action == "update":
            _action, tensor, theirs_idx, ours_idx = entry
            value = target_ds._engine(tensor).read_sample(theirs_idx)
            ds._update_with_sync(tensor, ours_idx, value)
        elif action == "resolve":
            _action, tensor, theirs_idx, ours_idx = entry
            ours_val = ds._engine(tensor).read_sample(ours_idx)
            theirs_val = target_ds._engine(tensor).read_sample(theirs_idx)
            ds._update_with_sync(
                tensor, ours_idx, conflict_resolution(ours_val, theirs_val)
            )

    message = commit_message or f"merge {target!r} into {vs.branch!r}"
    merged = commit(ds, message)
    ds._tree.node(merged).merge_parent = target_id
    ds._tree.save(ds.storage)
    return merged
