"""Branch-based locks for concurrent access (§7.3).

Deep Lake serialises writers per *branch*: a writer acquires a lock blob
``locks/<branch>.lock`` in the dataset's storage.  Locks carry an owner id
and a heartbeat timestamp so crashed writers go stale and can be broken.
"""

from __future__ import annotations

import time

from repro.exceptions import LockError
from repro.storage.provider import StorageProvider
from repro.util import keys as K
from repro.util.ids import new_commit_id
from repro.util.json_util import json_dumps, json_loads

DEFAULT_LOCK_TIMEOUT_S = 600.0


class BranchLock:
    """Advisory per-branch writer lock stored next to the data."""

    def __init__(
        self,
        storage: StorageProvider,
        branch: str,
        timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
    ):
        self.storage = storage
        self.branch = branch
        self.timeout_s = float(timeout_s)
        self.owner_id = new_commit_id()[:12]
        self.acquired = False

    @property
    def key(self) -> str:
        return K.branch_lock_key(self.branch)

    def _read(self):
        try:
            return json_loads(self.storage[self.key])
        except KeyError:
            return None

    def acquire(self, steal_stale: bool = True) -> None:
        """Take the lock or raise :class:`LockError` if actively held."""
        current = self._read()
        if current is not None and current["owner"] != self.owner_id:
            age = time.time() - current["heartbeat"]
            if age < self.timeout_s or not steal_stale:
                raise LockError(
                    f"branch {self.branch!r} is locked by "
                    f"{current['owner']!r} (heartbeat {age:.0f}s ago)"
                )
        self.storage[self.key] = json_dumps(
            {"owner": self.owner_id, "heartbeat": time.time()}
        )
        self.acquired = True

    def refresh(self) -> None:
        """Heartbeat; raises if the lock was stolen from us."""
        current = self._read()
        if current is None or current["owner"] != self.owner_id:
            self.acquired = False
            raise LockError(
                f"lost lock on branch {self.branch!r} "
                f"(now held by {current['owner'] if current else 'nobody'!r})"
            )
        self.storage[self.key] = json_dumps(
            {"owner": self.owner_id, "heartbeat": time.time()}
        )

    def release(self) -> None:
        current = self._read()
        if current is not None and current["owner"] == self.owner_id:
            try:
                del self.storage[self.key]
            except KeyError:
                pass
        self.acquired = False

    def __enter__(self) -> "BranchLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
