"""The branching version-control tree of a Deep Lake dataset (§4.2).

All versions live in the same storage; ``version_control_info.json`` at the
dataset root records the commit DAG and branch heads.  Each branch has a
*head* commit that is mutable (uncommitted working state); ``commit``
seals the head and opens a fresh child head.  Reads at any commit walk the
parent chain ("the version control tree is traversed starting from the
current commit, heading towards the first commit").
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.exceptions import (
    BranchExistsError,
    CommitNotFoundError,
    VersionControlError,
)
from repro.storage.provider import StorageProvider
from repro.util import keys as K
from repro.util.ids import new_commit_id
from repro.util.json_util import json_dumps, json_loads


class CommitNode:
    """One node of the commit DAG."""

    __slots__ = (
        "commit_id", "branch", "parent", "children", "message",
        "commit_time", "is_head", "merge_parent",
    )

    def __init__(
        self,
        commit_id: str,
        branch: str,
        parent: Optional[str],
        message: str = "",
        commit_time: Optional[float] = None,
        is_head: bool = True,
        merge_parent: Optional[str] = None,
    ):
        self.commit_id = commit_id
        self.branch = branch
        self.parent = parent
        self.children: List[str] = []
        self.message = message
        self.commit_time = commit_time
        self.is_head = is_head
        self.merge_parent = merge_parent

    def to_json(self) -> dict:
        return {
            "branch": self.branch,
            "parent": self.parent,
            "children": self.children,
            "message": self.message,
            "commit_time": self.commit_time,
            "is_head": self.is_head,
            "merge_parent": self.merge_parent,
        }

    @classmethod
    def from_json(cls, commit_id: str, obj: dict) -> "CommitNode":
        node = cls(
            commit_id,
            obj["branch"],
            obj.get("parent"),
            obj.get("message", ""),
            obj.get("commit_time"),
            obj.get("is_head", False),
            obj.get("merge_parent"),
        )
        node.children = list(obj.get("children", []))
        return node


class VersionTree:
    """In-memory commit DAG, serialised to version_control_info.json."""

    def __init__(self):
        self.commits: Dict[str, CommitNode] = {}
        self.branches: Dict[str, str] = {}  # branch -> head commit id

    # ------------------------------------------------------------------ #

    @classmethod
    def create_default(cls) -> "VersionTree":
        tree = cls()
        root = CommitNode(K.FIRST_COMMIT_ID, "main", None)
        tree.commits[root.commit_id] = root
        tree.branches["main"] = root.commit_id
        return tree

    @classmethod
    def load(cls, storage: StorageProvider) -> "VersionTree":
        try:
            data = storage[K.version_control_info_key()]
        except KeyError:
            return cls.create_default()
        obj = json_loads(data)
        tree = cls()
        tree.branches = dict(obj.get("branches", {}))
        for cid, node in obj.get("commits", {}).items():
            tree.commits[cid] = CommitNode.from_json(cid, node)
        return tree

    def save(self, storage: StorageProvider) -> None:
        storage[K.version_control_info_key()] = json_dumps(
            {
                "branches": self.branches,
                "commits": {c: n.to_json() for c, n in self.commits.items()},
            }
        )

    # ------------------------------------------------------------------ #

    def node(self, commit_id: str) -> CommitNode:
        try:
            return self.commits[commit_id]
        except KeyError:
            raise CommitNotFoundError(commit_id) from None

    def resolve(self, address: str) -> CommitNode:
        """Branch name or commit id -> node."""
        if address in self.branches:
            return self.node(self.branches[address])
        if address in self.commits:
            return self.node(address)
        raise CommitNotFoundError(address)

    def chain(self, commit_id: str) -> List[str]:
        """[commit_id, parent, ..., first] — the read path of §4.2."""
        out = []
        cur: Optional[str] = commit_id
        guard = 0
        while cur is not None:
            out.append(cur)
            cur = self.node(cur).parent
            guard += 1
            if guard > len(self.commits) + 1:
                raise VersionControlError("cycle detected in commit tree")
        return out

    def seal(self, commit_id: str, message: str) -> None:
        node = self.node(commit_id)
        node.message = message
        node.commit_time = time.time()
        node.is_head = False

    def add_child(self, parent_id: str, branch: str) -> CommitNode:
        child = CommitNode(new_commit_id(), branch, parent_id)
        self.commits[child.commit_id] = child
        self.node(parent_id).children.append(child.commit_id)
        self.branches[branch] = child.commit_id
        return child

    def create_branch(self, name: str, from_commit: str) -> CommitNode:
        if name in self.branches:
            raise BranchExistsError(name)
        return self.add_child(from_commit, name)

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        ancestors = set(self.chain(a))
        for cid in self.chain(b):
            if cid in ancestors:
                return cid
        raise VersionControlError(
            f"no common ancestor between {a!r} and {b!r}"
        )

    def path_to(self, descendant: str, ancestor: str) -> List[str]:
        """Commits from *descendant* down to (excluding) *ancestor*."""
        out = []
        for cid in self.chain(descendant):
            if cid == ancestor:
                return out
            out.append(cid)
        raise VersionControlError(
            f"{ancestor!r} is not an ancestor of {descendant!r}"
        )

    def log(self, commit_id: str) -> List[CommitNode]:
        """Sealed commits reachable from *commit_id*, newest first."""
        return [
            self.node(cid)
            for cid in self.chain(commit_id)
            if not self.node(cid).is_head
        ]
