"""Shared low-level utilities: storage key layout, shapes, json, ids."""

from repro.util.keys import (
    FIRST_COMMIT_ID,
    chunk_id_encoder_key,
    chunk_key,
    chunk_set_key,
    commit_diff_key,
    commit_root,
    dataset_meta_key,
    pad_encoder_key,
    sequence_encoder_key,
    tensor_meta_key,
    tile_encoder_key,
    version_control_info_key,
)
from repro.util.shape import ShapeInterval, ceildiv, nbytes_of
from repro.util.json_util import json_dumps, json_loads

__all__ = [
    "FIRST_COMMIT_ID",
    "commit_root",
    "dataset_meta_key",
    "tensor_meta_key",
    "chunk_key",
    "chunk_id_encoder_key",
    "tile_encoder_key",
    "sequence_encoder_key",
    "pad_encoder_key",
    "commit_diff_key",
    "chunk_set_key",
    "version_control_info_key",
    "ShapeInterval",
    "ceildiv",
    "nbytes_of",
    "json_dumps",
    "json_loads",
]
