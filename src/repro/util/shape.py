"""Shape bookkeeping helpers for ragged (dynamically shaped) tensors."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.exceptions import DynamicShapeError


def ceildiv(a: int, b: int) -> int:
    """Ceiling integer division (used throughout tiling and chunk math)."""
    return -(-a // b)


def nbytes_of(shape: Sequence[int], dtype) -> int:
    """Uncompressed byte size of an array of *shape* and *dtype*."""
    n = int(np.dtype(dtype).itemsize)
    for dim in shape:
        n *= int(dim)
    return n


class ShapeInterval:
    """Running [lower, upper] bound over per-sample shapes of one tensor.

    Deep Lake tensors are ragged: samples may differ per dimension.  The
    interval is what ``tensor.shape`` reports (``None`` for dynamic dims)
    and what the dataloader's memory-budget estimator uses for worst-case
    sample size.
    """

    __slots__ = ("lower", "upper", "_initialized")

    def __init__(self, lower: Sequence[int] = (), upper: Sequence[int] | None = None,
                 initialized: bool | None = None):
        self.lower: Tuple[int, ...] = tuple(int(x) for x in lower)
        self.upper: Tuple[int, ...] = tuple(
            int(x) for x in (upper if upper is not None else lower)
        )
        if len(self.lower) != len(self.upper):
            raise DynamicShapeError("shape interval bounds must share a rank")
        # rank-0 (scalar) samples also have () bounds, so "has any sample
        # been observed" needs its own flag
        if initialized is None:
            initialized = bool(self.lower or self.upper)
        self._initialized = initialized

    @property
    def is_empty(self) -> bool:
        return not self._initialized

    @property
    def is_uniform(self) -> bool:
        """True when every sample seen so far had exactly the same shape."""
        return self.lower == self.upper

    def update(self, shape: Sequence[int]) -> None:
        """Widen the interval to include *shape* (rank must match once set)."""
        shape = tuple(int(x) for x in shape)
        if self.is_empty:
            self.lower = shape
            self.upper = shape
            self._initialized = True
            return
        if len(shape) != len(self.lower):
            raise DynamicShapeError(
                f"sample of rank {len(shape)} appended to tensor of rank "
                f"{len(self.lower)}"
            )
        self.lower = tuple(min(a, b) for a, b in zip(self.lower, shape))
        self.upper = tuple(max(a, b) for a, b in zip(self.upper, shape))

    def astuple(self) -> Tuple:
        """Report shape with ``None`` in dynamic dimensions (user facing)."""
        return tuple(
            lo if lo == hi else None for lo, hi in zip(self.lower, self.upper)
        )

    def max_nbytes(self, dtype) -> int:
        """Worst-case uncompressed sample size, for prefetch budgeting."""
        if self.is_empty:
            return 0
        return nbytes_of(self.upper, dtype)

    def to_json(self) -> dict:
        return {
            "lower": list(self.lower),
            "upper": list(self.upper),
            "initialized": self._initialized,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ShapeInterval":
        return cls(
            obj.get("lower", ()),
            obj.get("upper", ()),
            initialized=obj.get("initialized"),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShapeInterval)
            and self.lower == other.lower
            and self.upper == other.upper
            and self.is_empty == other.is_empty
        )

    def __repr__(self) -> str:
        return f"ShapeInterval(lower={self.lower}, upper={self.upper})"


def normalize_index(
    index, length: int
) -> Tuple[Iterable[int], bool]:
    """Resolve a user index into (iterable of sample indices, is_scalar).

    Accepts ints (negative ok), slices, and integer sequences/arrays.
    """
    if isinstance(index, (int, np.integer)):
        i = int(index)
        if i < 0:
            i += length
        if not 0 <= i < length:
            raise IndexError(f"index {index} out of range for length {length}")
        return [i], True
    if isinstance(index, slice):
        return list(range(*index.indices(length))), False
    if isinstance(index, np.ndarray):
        if index.dtype == bool:
            if len(index) != length:
                raise IndexError("boolean mask length mismatch")
            return [int(i) for i in np.nonzero(index)[0]], False
        index = index.tolist()
    if isinstance(index, (list, tuple)):
        out = []
        for i in index:
            j = int(i)
            if j < 0:
                j += length
            if not 0 <= j < length:
                raise IndexError(f"index {i} out of range for length {length}")
            out.append(j)
        return out, False
    raise TypeError(f"unsupported index type: {type(index).__name__}")
