"""Storage key layout of the Tensor Storage Format.

A Deep Lake dataset is a flat key space on a storage provider.  The first
commit lives at the dataset root; every other commit lives under
``versions/<commit_id>/``.  Each tensor owns a sub-tree with its chunks,
encoders and per-commit bookkeeping, mirroring the paper's "provenance file
in JSON format and folders per tensor" layout (§3.4).

Example key space for a dataset with one extra commit ``abc`` and a tensor
``images``::

    dataset_meta.json
    version_control_info.json
    images/tensor_meta.json
    images/chunk_id_encoder
    images/chunks/0f3a9c...
    images/chunk_set.json
    images/commit_diff.json
    versions/abc/dataset_meta.json
    versions/abc/images/...
"""

from __future__ import annotations

FIRST_COMMIT_ID = "firstcommit"

VERSION_CONTROL_INFO = "version_control_info.json"
DATASET_META_FILENAME = "dataset_meta.json"
TENSOR_META_FILENAME = "tensor_meta.json"
DATASET_INFO_FILENAME = "dataset_info.json"
CHUNKS_FOLDER = "chunks"
CHUNK_ID_ENCODER_FILENAME = "chunk_id_encoder"
TILE_ENCODER_FILENAME = "tile_encoder.json"
SEQUENCE_ENCODER_FILENAME = "sequence_encoder"
PAD_ENCODER_FILENAME = "pad_encoder"
COMMIT_DIFF_FILENAME = "commit_diff.json"
CHUNK_SET_FILENAME = "chunk_set.json"
CHUNK_STATS_FILENAME = "chunk_stats.json"
LOCKS_FOLDER = "locks"
QUERIES_FOLDER = "queries"


#: Write-back ordering classes (crash consistency): chunk payloads must be
#: durable before the encoders that index them, and encoders before the
#: meta/bookkeeping files that declare samples visible.  A crash between
#: classes leaves unreferenced chunks (harmless garbage), never meta that
#: points at missing chunks.
KEY_CLASS_CHUNK = 0
KEY_CLASS_ENCODER = 1
KEY_CLASS_META = 2

_ENCODER_FILENAMES = (
    CHUNK_ID_ENCODER_FILENAME,
    TILE_ENCODER_FILENAME,
    SEQUENCE_ENCODER_FILENAME,
    PAD_ENCODER_FILENAME,
)


def key_class(key: str) -> int:
    """Flush-ordering class of *key*: chunks < encoders < meta/bookkeeping."""
    if f"/{CHUNKS_FOLDER}/" in key:
        return KEY_CLASS_CHUNK
    leaf = key.rsplit("/", 1)[-1]
    if leaf in _ENCODER_FILENAMES:
        return KEY_CLASS_ENCODER
    return KEY_CLASS_META


def commit_root(commit_id: str) -> str:
    """Prefix under which a commit's files live ('' for the first commit)."""
    if commit_id == FIRST_COMMIT_ID:
        return ""
    return f"versions/{commit_id}/"


def dataset_meta_key(commit_id: str) -> str:
    return f"{commit_root(commit_id)}{DATASET_META_FILENAME}"


def dataset_info_key(commit_id: str) -> str:
    return f"{commit_root(commit_id)}{DATASET_INFO_FILENAME}"


def tensor_meta_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{TENSOR_META_FILENAME}"


def chunk_key(commit_id: str, tensor: str, chunk_name: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{CHUNKS_FOLDER}/{chunk_name}"


def chunk_id_encoder_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{CHUNK_ID_ENCODER_FILENAME}"


def tile_encoder_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{TILE_ENCODER_FILENAME}"


def sequence_encoder_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{SEQUENCE_ENCODER_FILENAME}"


def pad_encoder_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{PAD_ENCODER_FILENAME}"


def commit_diff_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{COMMIT_DIFF_FILENAME}"


def chunk_set_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{CHUNK_SET_FILENAME}"


def chunk_stats_key(commit_id: str, tensor: str) -> str:
    return f"{commit_root(commit_id)}{tensor}/{CHUNK_STATS_FILENAME}"


def version_control_info_key() -> str:
    return VERSION_CONTROL_INFO


def branch_lock_key(branch: str) -> str:
    return f"{LOCKS_FOLDER}/{branch}.lock"


def saved_view_key(view_id: str) -> str:
    return f"{QUERIES_FOLDER}/{view_id}.json"


def hidden_tensor_name(tensor: str, kind: str) -> str:
    """Name of a hidden companion tensor (shape/id/downsampled) for *tensor*.

    Hidden tensors live next to their owner; only the final path component
    is mangled so group nesting is preserved:
    ``hidden_tensor_name("cams/left", "shape") == "cams/_left_shape"``.
    """
    if "/" in tensor:
        group, leaf = tensor.rsplit("/", 1)
        return f"{group}/_{leaf}_{kind}"
    return f"_{tensor}_{kind}"
