"""JSON helpers that understand numpy scalars/arrays and emit stable bytes."""

from __future__ import annotations

import json
from typing import Any

import numpy as np


class _NumpyEncoder(json.JSONEncoder):
    def default(self, obj: Any):
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (set, frozenset)):
            return sorted(obj)
        if isinstance(obj, bytes):
            return obj.decode("utf-8", errors="replace")
        return super().default(obj)


def json_dumps(obj: Any) -> bytes:
    """Serialise *obj* to canonical (sorted-key) utf-8 JSON bytes."""
    return json.dumps(
        obj, cls=_NumpyEncoder, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def json_loads(data: bytes | str) -> Any:
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = bytes(data).decode("utf-8")
    return json.loads(data)
