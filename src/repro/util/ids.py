"""Identifier generation for chunks, commits and samples.

Sample ids are stable identities used by merge to match rows across
branches (paper §4.2: "ids of samples are generated and stored during the
dataset population").  Chunk/commit ids only need uniqueness.

All generation flows through a module RNG so tests can make runs
deterministic via :func:`seed_ids`.
"""

from __future__ import annotations

import threading

import numpy as np

_lock = threading.Lock()
_rng = np.random.default_rng()


def seed_ids(seed: int | None) -> None:
    """Re-seed the id generator (``None`` restores OS entropy)."""
    global _rng
    with _lock:
        _rng = np.random.default_rng(seed)


def _hex(nbytes: int) -> str:
    with _lock:
        raw = _rng.integers(0, 256, size=nbytes, dtype=np.uint8)
    return bytes(raw).hex()


def new_chunk_name() -> str:
    """8-byte hex chunk blob name.

    Must round-trip through :class:`ChunkIdEncoder`'s uint64 chunk ids
    (``int(name, 16)``), so exactly 16 hex chars.
    """
    return _hex(8)


def new_commit_id() -> str:
    """20-byte hex commit id."""
    return _hex(20)


def new_sample_id() -> int:
    """Random uint64 sample identity (stored in a hidden id tensor)."""
    with _lock:
        return int(_rng.integers(1, np.iinfo(np.int64).max, dtype=np.int64))


def new_view_id() -> str:
    return _hex(8)


def new_trace_id() -> str:
    """16-byte hex trace identifier (observability spans)."""
    return _hex(16)


def new_span_id() -> str:
    """8-byte hex span identifier (observability spans)."""
    return _hex(8)
