"""Parallel sample-wise transformations (§4.1.2).

A user function decorated with ``@repro.compute`` takes ``(sample_in,
sample_out, **kwargs)`` and may emit one *or several* output rows per input
(one-to-one and one-to-many).  ``fn(**kwargs).eval(data_in, ds_out, ...)``
runs it over a dataset/view or any iterable, appending to ``ds_out`` — or
in place when ``ds_out`` is omitted and the function mutates samples.

The scheduler batches sample-wise work by *chunk adjacency* ("the scheduler
batches sample-wise transformations operating on nearby chunks") so each
worker decodes a chunk-aligned range, and runs batches on a thread pool
(our codecs release the GIL inside zlib/scipy, which is what the paper's
C++ engine achieves with per-process decompression).  Results are appended
strictly in input order, so eval is deterministic regardless of worker
count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import TransformError
from repro.transform.scheduler import plan_batches

#: rows buffered per columnar ``ds_out.extend`` flush on the append path —
#: large enough to fill whole chunks per staged batch, small enough to
#: keep writes overlapped with compute instead of trailing it
_WRITE_BATCH_ROWS = 256


class SampleOut:
    """Collector the UDF writes into; supports one-to-many via repeated
    appends (every tensor must end the call with equal row counts)."""

    def __init__(self, tensors: Sequence[str]):
        self._tensors = list(tensors)
        self._rows: Dict[str, List] = {t: [] for t in tensors}

    def append(self, row: Dict[str, object]) -> "SampleOut":
        for key, value in row.items():
            if key not in self._rows:
                raise KeyError(
                    f"unknown output tensor {key!r}; expected one of "
                    f"{self._tensors}"
                )
            self._rows[key].append(value)
        return self

    def __getattr__(self, name: str):
        rows = self.__dict__.get("_rows", {})
        if name in rows:
            return _TensorAppender(rows[name])
        raise AttributeError(name)

    def row_count(self) -> int:
        counts = {len(v) for v in self._rows.values()}
        if len(counts) > 1:
            raise TransformError(
                "?", ValueError(f"uneven output rows per tensor: "
                                f"{ {k: len(v) for k, v in self._rows.items()} }")
            )
        return counts.pop() if counts else 0

    def rows(self) -> List[Dict[str, object]]:
        n = self.row_count()
        return [
            {t: self._rows[t][i] for t in self._tensors} for i in range(n)
        ]


class _TensorAppender:
    __slots__ = ("_list",)

    def __init__(self, lst: List):
        self._list = lst

    def append(self, value) -> None:
        self._list.append(value)


class ComputeFunction:
    """A bound transform: decorated fn + its kwargs; composable."""

    def __init__(self, fn: Callable, kwargs: dict):
        self.fn = fn
        self.kwargs = kwargs
        self.name = getattr(fn, "__name__", "transform")

    def _apply(self, sample_in, sample_out: SampleOut) -> None:
        self.fn(sample_in, sample_out, **self.kwargs)

    def eval(
        self,
        data_in,
        ds_out=None,
        num_workers: int = 0,
        progress: bool = False,
        read_tensors: Optional[Sequence[str]] = None,
    ):
        """Run over *data_in* (Dataset/view or iterable).

        With ``ds_out`` given, outputs are appended to it; without it the
        transform must be in-place mutations of dataset rows (data_in must
        then be a Dataset).
        """
        pipeline = Pipeline([self])
        return pipeline.eval(
            data_in,
            ds_out,
            num_workers=num_workers,
            progress=progress,
            read_tensors=read_tensors,
        )

    def __repr__(self) -> str:
        return f"ComputeFunction({self.name})"


class _ComputeDecorator:
    """``@repro.compute`` — makes fn callable into a ComputeFunction."""

    def __init__(self, fn: Callable):
        self.fn = fn
        self.__name__ = getattr(fn, "__name__", "transform")
        self.__doc__ = fn.__doc__

    def __call__(self, **kwargs) -> ComputeFunction:
        return ComputeFunction(self.fn, kwargs)


def compute(fn: Callable) -> _ComputeDecorator:
    """Decorator: ``@repro.compute`` over ``fn(sample_in, sample_out, **kw)``."""
    return _ComputeDecorator(fn)


class Pipeline:
    """Stacked transforms: output rows of stage k feed stage k+1."""

    def __init__(self, steps: Sequence[ComputeFunction]):
        self.steps = list(steps)

    # ------------------------------------------------------------------ #

    def _run_one(self, sample_in, out_tensors: Sequence[str]) -> List[Dict]:
        rows = [sample_in]
        for step in self.steps:
            next_rows: List[Dict] = []
            for row in rows:
                collector = SampleOut(out_tensors)
                step._apply(row, collector)
                next_rows.extend(collector.rows())
            rows = next_rows
        return rows

    def eval(
        self,
        data_in,
        ds_out=None,
        num_workers: int = 0,
        progress: bool = False,
        read_tensors: Optional[Sequence[str]] = None,
    ):
        from repro.core.dataset import Dataset

        in_place = ds_out is None
        if in_place:
            if not isinstance(data_in, Dataset):
                raise TransformError(
                    "-", ValueError("in-place eval requires a Dataset input")
                )
            ds_out = data_in
        out_tensors = list(ds_out.tensors)

        # materialise the input as (index, sample_dict) work items
        if isinstance(data_in, Dataset):
            names = list(read_tensors or data_in.tensors)
            length = len(data_in)

            def fetch(i: int) -> Dict:
                return {
                    t: data_in[t][i].numpy() for t in names
                }

            batches = plan_batches(data_in, names, length, num_workers)
        else:
            items = list(data_in)
            length = len(items)

            def fetch(i: int):
                return items[i]

            size = max(1, length // max(1, (num_workers or 1) * 4))
            batches = [
                list(range(s, min(s + size, length)))
                for s in range(0, length, size)
            ]

        def run_batch(indices: List[int]) -> List[List[Dict]]:
            out = []
            for i in indices:
                try:
                    out.append(self._run_one(fetch(i), out_tensors))
                except TransformError:
                    raise
                except Exception as exc:  # noqa: BLE001 - annotate index
                    raise TransformError(i, exc) from exc
            return out

        parallel = bool(num_workers and num_workers > 1 and len(batches) > 1)

        # deterministic, input-ordered writes
        written = 0
        if in_place:
            if parallel:
                with ThreadPoolExecutor(max_workers=num_workers) as pool:
                    results = list(pool.map(run_batch, batches))
            else:
                results = [run_batch(b) for b in batches]
            flat_indices = [i for batch in batches for i in batch]
            flat_rows = [rows for result in results for rows in result]
            for i, rows in zip(flat_indices, flat_rows):
                if len(rows) != 1:
                    raise TransformError(
                        i,
                        ValueError(
                            "in-place transforms must emit exactly one row"
                        ),
                    )
                for tensor, value in rows[0].items():
                    ds_out._update_with_sync(ds_out._qualify(tensor), i, value)
                written += 1
        else:
            # Append path: stream finished batches (pool.map yields them in
            # input order as they complete) into columnar buffers and flush
            # each buffer as one staged ``ds_out.extend`` — the engines'
            # write pipeline then serializes chunks on worker threads and
            # uploads them in batched set_many calls, overlapping writes
            # with the compute still running.
            buf: Dict[str, List] = {t: [] for t in out_tensors}
            buffered = 0

            def flush_buf() -> None:
                nonlocal buffered, written
                if not buffered:
                    return
                ds_out.extend({t: buf[t] for t in out_tensors})
                written += buffered
                for t in out_tensors:
                    buf[t].clear()
                buffered = 0

            def consume(result: List[List[Dict]]) -> None:
                nonlocal buffered
                for rows in result:
                    for row in rows:
                        for t in out_tensors:
                            buf[t].append(row[t])
                        buffered += 1
                        if buffered >= _WRITE_BATCH_ROWS:
                            flush_buf()

            if parallel:
                with ThreadPoolExecutor(max_workers=num_workers) as pool:
                    for result in pool.map(run_batch, batches):
                        consume(result)
            else:
                for b in batches:
                    consume(run_batch(b))
            flush_buf()
        ds_out.flush()
        return written

    def eval_with(self, **_ignored):  # pragma: no cover - reserved
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Pipeline({[s.name for s in self.steps]})"


def compose(steps: Sequence[ComputeFunction]) -> Pipeline:
    """``repro.compose([...])`` — stack transforms into one pipeline."""
    return Pipeline(steps)
