"""Chunk-locality batching for the transform scheduler (§4.1.2).

"Behind the scenes, the scheduler batches sample-wise transformations
operating on nearby chunks and schedules them on a process pool."  Given a
dataset, we cut the index range at chunk boundaries of its largest tensor
so each worker's batch decodes whole chunks instead of straddling them.
"""

from __future__ import annotations

from typing import List, Sequence


def plan_batches(ds, tensor_names: Sequence[str], length: int,
                 num_workers: int) -> List[List[int]]:
    """Index batches aligned to chunk boundaries of the dominant tensor."""
    if length <= 0:
        return []
    boundaries = {0, length}
    dominant = None
    dominant_bytes = -1
    for name in tensor_names:
        engine = ds._engine(ds._qualify(name))
        nbytes = engine.meta.max_sample_nbytes
        if nbytes > dominant_bytes:
            dominant_bytes = nbytes
            dominant = engine
    if dominant is not None:
        for _name, start, end in dominant.chunk_layout():
            if 0 < start < length:
                boundaries.add(start)
            if 0 < end < length:
                boundaries.add(end)
    cuts = sorted(boundaries)
    batches = [
        list(range(cuts[i], cuts[i + 1])) for i in range(len(cuts) - 1)
    ]
    # keep at least ~4 batches per worker for load balance, splitting the
    # biggest batches when chunk boundaries are too coarse
    target = max(1, (num_workers or 1) * 4)
    while len(batches) < target:
        batches.sort(key=len, reverse=True)
        big = batches[0]
        if len(big) < 2:
            break
        mid = len(big) // 2
        batches = [big[:mid], big[mid:]] + batches[1:]
    batches.sort(key=lambda b: b[0])
    return [b for b in batches if b]
