"""Parallel python transformations over datasets (§4.1.2)."""

from repro.transform.compute import (
    ComputeFunction,
    Pipeline,
    SampleOut,
    compose,
    compute,
)
from repro.transform.scheduler import plan_batches

__all__ = [
    "compute",
    "compose",
    "ComputeFunction",
    "Pipeline",
    "SampleOut",
    "plan_batches",
]
