"""Batch collation: stack uniform samples, list ragged ones, hand over to
the training framework "in deep learning native memory layout" (§4.6)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import CollateError


def default_collate(samples: Sequence[Dict]) -> Dict[str, object]:
    """Dict-of-lists -> dict of stacked arrays (or lists when ragged)."""
    if not samples:
        return {}
    keys = samples[0].keys()
    batch: Dict[str, object] = {}
    for key in keys:
        values = [s[key] for s in samples]
        first = values[0]
        if isinstance(first, np.ndarray):
            shapes = {v.shape for v in values}
            if len(shapes) == 1:
                batch[key] = np.stack(values)
            else:
                batch[key] = values  # ragged: keep a list
        elif isinstance(first, (int, float, np.integer, np.floating)):
            batch[key] = np.asarray(values)
        else:
            batch[key] = values
    return batch


def strict_collate(samples: Sequence[Dict]) -> Dict[str, np.ndarray]:
    """Collate that refuses ragged batches (training loops that require
    fixed shapes)."""
    batch = default_collate(samples)
    for key, value in batch.items():
        if isinstance(value, list):
            shapes = sorted({np.asarray(v).shape for v in value})
            raise CollateError(
                f"tensor {key!r} has non-uniform shapes in batch: {shapes}; "
                "crop/resize in a transform or use default_collate"
            )
    return batch


def pad_collate(samples: Sequence[Dict], pad_value: float = 0.0) -> Dict:
    """Collate that zero-pads ragged arrays to the batch max shape."""
    batch = default_collate(samples)
    for key, value in batch.items():
        if isinstance(value, list) and value and isinstance(value[0], np.ndarray):
            ranks = {v.ndim for v in value}
            if len(ranks) != 1:
                raise CollateError(f"tensor {key!r} mixes ranks in one batch")
            max_shape = tuple(
                max(v.shape[d] for v in value) for d in range(value[0].ndim)
            )
            out = np.full(
                (len(value), *max_shape), pad_value, dtype=value[0].dtype
            )
            for i, v in enumerate(value):
                out[(i, *tuple(slice(0, s) for s in v.shape))] = v
            batch[key] = out
    return batch
