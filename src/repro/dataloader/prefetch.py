"""Prefetcher: the parallel fetch/decode stage of the dataloader (§4.6).

"Deep Lake dataloader delegates highly parallel fetching and in-place
decompressing in C++ per process to avoid global interpreter lock" — here
the decoders (zlib/scipy) release the GIL, so a thread pool achieves the
same overlap.  Two properties from the paper are reproduced explicitly:

- **Smart scheduler**: tasks carry an estimated CPU cost; workers pull
  the most CPU-intensive pending task first so decode-heavy samples start
  early and hide under lighter ones ("dynamically differentiating between
  CPU-intensive jobs prioritization over less-intensive").
- **Efficient resource allocation**: the number of in-flight samples is
  capped by a memory budget computed from worst-case decoded sample size
  ("predicting memory consumption to avoid breaking the training process
  due to memory overfilling").
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.exceptions import (
    DataLoaderError,
    MemoryBudgetError,
    TaskCancelledError,
)


class PriorityWorkerPool:
    """Thread pool draining a max-priority task heap."""

    def __init__(self, num_workers: int):
        self.num_workers = max(1, num_workers)
        self._heap: List = []
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._shutdown = False
        # named so nested layers (e.g. the chunk engine's decode pool)
        # and trace/debug output can tell loader workers apart
        self._threads = [
            threading.Thread(
                target=self._worker, daemon=True,
                name=f"loader-prefetch-{i}",
            )
            for i in range(self.num_workers)
        ]
        for t in self._threads:
            t.start()

    def submit(self, priority: float, fn: Callable, *args) -> "Future":
        future = Future()
        with self._not_empty:
            if self._shutdown:
                raise DataLoaderError("worker pool is shut down")
            # negate priority: heapq pops smallest, we want biggest first
            heapq.heappush(
                self._heap, (-priority, next(self._counter), fn, args, future)
            )
            self._not_empty.notify()
        return future

    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._heap and not self._shutdown:
                    self._not_empty.wait()
                if self._shutdown and not self._heap:
                    return
                _prio, _seq, fn, args, future = heapq.heappop(self._heap)
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - propagate to consumer
                future.set_exception(exc)

    def pending(self) -> int:
        """Tasks queued but not yet picked up by a worker."""
        with self._lock:
            return len(self._heap)

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Stop the pool; by default cancel tasks that never started.

        Cancelling wakes every waiter with :class:`TaskCancelledError`
        instead of leaving it blocked on a result that will never arrive
        (a shutting-down server/loader must not deadlock its consumers).
        Tasks already running complete normally.
        """
        with self._not_empty:
            self._shutdown = True
            if cancel_pending:
                pending = self._heap
                self._heap = []
            else:
                pending = []
            self._not_empty.notify_all()
        for _prio, _seq, _fn, _args, future in pending:
            future.cancel()
        for t in self._threads:
            t.join(timeout=5)


class Future:
    """Tiny future (avoids concurrent.futures' executor coupling).

    Settling is first-wins and idempotent: once a result, exception, or
    cancellation lands, later ``set_*`` calls return ``False`` and change
    nothing — so a worker finishing a task that was cancelled mid-flight
    cannot clobber the cancellation (and vice versa).
    """

    __slots__ = ("_event", "_lock", "_result", "_exc", "_cancelled")

    def __init__(self):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result = None
        self._exc: Optional[BaseException] = None
        self._cancelled = False

    def set_result(self, value) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._result = value
            self._event.set()
            return True

    def set_exception(self, exc: BaseException) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._exc = exc
            self._event.set()
            return True

    def cancel(self) -> bool:
        """Settle with :class:`TaskCancelledError`; False if already done."""
        with self._lock:
            if self._event.is_set():
                return False
            self._cancelled = True
            self._exc = TaskCancelledError("task cancelled before it ran")
            self._event.set()
            return True

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise DataLoaderError("prefetch task timed out")
        if self._exc is not None:
            raise self._exc
        return self._result

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        return self._cancelled


def group_indices(rows: Sequence[int], group_size: int) -> List[tuple]:
    """Split an order plan into contiguous worker groups.

    Each group becomes one prefetch task executing a single ReadPlan, so
    with a chunk-aware order plan a group's rows land on one (or few)
    chunks and the fetch/decompress amortizes across the whole group.
    """
    size = max(1, int(group_size))
    rows = list(rows)
    return [tuple(rows[i : i + size]) for i in range(0, len(rows), size)]


def compute_inflight_limit(
    num_workers: int,
    prefetch_factor: int,
    sample_nbytes: int,
    memory_budget_bytes: Optional[int],
) -> int:
    """How many samples may be in flight at once."""
    limit = max(1, num_workers) * max(1, prefetch_factor)
    if memory_budget_bytes is not None and sample_nbytes > 0:
        by_memory = memory_budget_bytes // sample_nbytes
        if by_memory < 1:
            raise MemoryBudgetError(
                f"a single decoded sample (~{sample_nbytes} B) exceeds the "
                f"memory budget ({memory_budget_bytes} B)"
            )
        limit = min(limit, int(by_memory))
    return max(1, limit)


def prefetched(
    indices: Sequence,
    fetch: Callable[..., Dict],
    num_workers: int,
    inflight_limit: int,
    priority_of: Optional[Callable[..., float]] = None,
    queue_gauge=None,
) -> Iterator[Dict]:
    """Yield ``fetch(i)`` results in input order with bounded lookahead.

    Workers run ahead by up to *inflight_limit* samples; consumption order
    is preserved so batches are deterministic given the order plan.

    *queue_gauge* (an :class:`repro.obs.metrics.Gauge`, optional) tracks
    the number of in-flight prefetch tasks so a metrics snapshot shows
    how far ahead of the consumer the workers are running.
    """
    if num_workers <= 0:
        for i in indices:
            yield fetch(i)
        return
    pool = PriorityWorkerPool(num_workers)
    try:
        indices = list(indices)
        futures: Dict[int, Future] = {}
        next_submit = 0

        def submit_upto(target: int) -> None:
            nonlocal next_submit
            while next_submit < min(target, len(indices)):
                i = indices[next_submit]
                prio = priority_of(i) if priority_of else 0.0
                futures[next_submit] = pool.submit(prio, fetch, i)
                next_submit += 1
            if queue_gauge is not None:
                queue_gauge.set(len(futures))

        submit_upto(inflight_limit)
        for pos in range(len(indices)):
            future = futures.pop(pos)
            value = future.result(timeout=300)
            submit_upto(pos + 1 + inflight_limit)
            yield value
    finally:
        pool.shutdown()
