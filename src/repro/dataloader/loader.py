"""DeepLakeLoader: the streaming dataloader of §4.6.

Pipeline per sample: order plan -> prefetch workers (fetch + decompress,
GIL released in codecs) -> user transform -> collate -> framework
handover.  Statistics record wall time spent waiting on data vs total so
benchmarks can report loader stall (the complement of GPU utilization in
the training sims).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataloader.collate import default_collate
from repro.dataloader.order import (
    chunk_aware_shuffle,
    naive_shuffle,
    sequential_order,
    shard_for_rank,
)
from repro.dataloader.prefetch import compute_inflight_limit, prefetched
from repro.exceptions import DataLoaderError
from repro.integrations.frameworks import to_backend


class LoaderStats:
    """Throughput/stall accounting of one epoch."""

    def __init__(self):
        self.samples = 0
        self.batches = 0
        self.wait_s = 0.0
        self.total_s = 0.0
        self.transform_s = 0.0

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.total_s if self.total_s > 0 else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.wait_s / self.total_s if self.total_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "batches": self.batches,
            "samples_per_s": round(self.samples_per_second, 1),
            "stall_fraction": round(self.stall_fraction, 4),
            "total_s": round(self.total_s, 4),
        }


class DeepLakeLoader:
    """Iterable of collated batches streaming straight from storage."""

    def __init__(
        self,
        dataset,
        batch_size: int = 1,
        shuffle: bool = False,
        shuffle_mode: str = "chunk",  # 'chunk' | 'naive' | 'none'
        window_chunks: int = 8,
        num_workers: int = 0,
        prefetch_factor: int = 2,
        transform: Optional[Callable[[Dict], Dict]] = None,
        tensors: Optional[Sequence[str]] = None,
        drop_last: bool = False,
        collate: Optional[Callable] = None,
        backend: str = "numpy",
        memory_budget_bytes: Optional[int] = 512 * 1024 * 1024,
        seed: Optional[int] = None,
        distributed: Optional[Tuple[int, int]] = None,  # (rank, world)
        decode: bool = True,
    ):
        self.dataset = dataset
        self.batch_size = int(batch_size)
        if self.batch_size < 1:
            raise DataLoaderError("batch_size must be >= 1")
        self.shuffle = shuffle
        self.shuffle_mode = shuffle_mode if shuffle else "none"
        self.window_chunks = window_chunks
        self.num_workers = int(num_workers)
        self.prefetch_factor = int(prefetch_factor)
        self.transform = transform
        self.tensor_names = (
            list(tensors) if tensors is not None else list(dataset.tensors)
        )
        if not self.tensor_names:
            raise DataLoaderError("dataset has no tensors to load")
        self.drop_last = drop_last
        self.collate = collate or default_collate
        self.backend = backend
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = seed
        self.distributed = distributed
        self.decode = decode
        self.stats = LoaderStats()

    # ------------------------------------------------------------------ #

    def _qualified(self) -> List[str]:
        if not hasattr(self, "_qualified_cache"):
            self._qualified_cache = [
                self.dataset._qualify(t) for t in self.tensor_names
            ]
        return self._qualified_cache

    def _dominant_engine(self):
        if not hasattr(self, "_dominant_cache"):
            best = None
            best_bytes = -1
            for name in self._qualified():
                engine = self.dataset._engine(name)
                nbytes = engine.meta.max_sample_nbytes
                if nbytes > best_bytes:
                    best_bytes = nbytes
                    best = engine
            self._dominant_cache = best
        return self._dominant_cache

    def _sample_nbytes(self) -> int:
        total = 0
        for name in self._qualified():
            total += self.dataset._engine(name).meta.max_sample_nbytes
        return total

    def _plan_order(self) -> List[int]:
        ds = self.dataset
        lengths = [
            ds._engine(n).num_samples for n in self._qualified()
        ]
        length = min(lengths)
        rows = ds.index.row_indices(length)
        if self.shuffle_mode == "naive":
            rows = naive_shuffle(rows, self.seed)
        elif self.shuffle_mode == "chunk":
            dominant = self._dominant_engine()
            rows = chunk_aware_shuffle(
                rows,
                dominant.chunk_layout(),
                seed=self.seed,
                window_chunks=self.window_chunks,
            )
        else:
            rows = sequential_order(rows)
        if self.distributed:
            rank, world = self.distributed
            rows = shard_for_rank(rows, rank, world)
        return rows

    def _fetch(self, row: int) -> Dict:
        ds = self.dataset
        out: Dict[str, object] = {}
        for short, name in zip(self.tensor_names, self._qualified()):
            engine = ds._engine(name)
            if self.decode:
                # streaming prefers whole-chunk fetches: neighbours are
                # consumed next and the decoded chunk caches
                value = engine.read_sample(row, prefer_full=True)
            else:
                raw, _shape = engine._read_flat_bytes(row)
                value = np.frombuffer(raw, dtype=np.uint8)
            out[short] = value
        if self.transform is not None:
            t0 = time.perf_counter()
            out = self.transform(out)
            self.stats.transform_s += time.perf_counter() - t0
        return out

    def _priority(self, row: int) -> float:
        """CPU-cost estimate: bigger decoded samples cost more, so the
        smart scheduler starts them first.

        Uniform tensors get a constant estimate (cheap); only genuinely
        ragged tensors pay a per-row shape lookup (header metadata, no
        payload decode).
        """
        engine = self._dominant_engine()
        interval = engine.meta.shape_interval
        if interval.is_uniform or engine.meta.is_link:
            return float(engine.meta.max_sample_nbytes)
        try:
            shape = engine.read_shape(row)
        except Exception:  # noqa: BLE001 - priority is best-effort
            return 0.0
        return float(np.prod(shape)) if shape else 0.0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        rows = len(self._plan_order())
        if self.drop_last:
            return rows // self.batch_size
        return -(-rows // self.batch_size)

    def _fetch_group(self, rows: Tuple[int, ...]) -> List[Dict]:
        return [self._fetch(row) for row in rows]

    def __iter__(self):
        self.stats = LoaderStats()
        rows = self._plan_order()
        inflight = compute_inflight_limit(
            self.num_workers,
            self.prefetch_factor,
            self._sample_nbytes(),
            self.memory_budget_bytes,
        )
        # workers fetch groups of samples, not single samples: the decode
        # of a group amortises task-dispatch overhead and keeps workers on
        # one chunk at a time (locality)
        group_size = max(1, min(self.batch_size, inflight, 16))
        groups = [
            tuple(rows[i : i + group_size])
            for i in range(0, len(rows), group_size)
        ]
        stream = prefetched(
            groups,
            self._fetch_group,
            num_workers=self.num_workers,
            inflight_limit=max(1, inflight // group_size),
            priority_of=(
                (lambda g: self._priority(g[0])) if self.num_workers else None
            ),
        )
        epoch_start = time.perf_counter()
        batch: List[Dict] = []
        try:
            while True:
                wait_start = time.perf_counter()
                try:
                    group = next(stream)
                except StopIteration:
                    break
                self.stats.wait_s += time.perf_counter() - wait_start
                for sample in group:
                    self.stats.samples += 1
                    batch.append(sample)
                    if len(batch) == self.batch_size:
                        self.stats.batches += 1
                        self.stats.total_s = time.perf_counter() - epoch_start
                        yield to_backend(self.collate(batch), self.backend)
                        batch = []
            if batch and not self.drop_last:
                self.stats.batches += 1
                yield to_backend(self.collate(batch), self.backend)
        finally:
            self.stats.total_s = time.perf_counter() - epoch_start
