"""DeepLakeLoader: the streaming dataloader of §4.6.

Pipeline per group: order plan -> prefetch workers (one
:class:`~repro.core.chunk_engine.ReadPlan` per worker group: fetch each
chunk once, decompress once, slice all samples; codecs release the GIL)
-> user transform -> collate -> framework handover.  Statistics record
wall time spent waiting on data vs total so benchmarks can report loader
stall (the complement of GPU utilization in the training sims), plus the
decoded-chunk cache hit/miss counts that make chunk-granular batching
observable.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataloader.collate import default_collate
from repro.dataloader.order import (
    chunk_aware_shuffle,
    naive_shuffle,
    sequential_order,
    shard_for_rank,
)
from repro.dataloader.prefetch import (
    compute_inflight_limit,
    group_indices,
    prefetched,
)
from repro.exceptions import DataLoaderError
from repro.integrations.frameworks import to_backend
from repro.obs import metrics as _metrics


class LoaderStats:
    """Throughput/stall accounting of one epoch.

    ``chunk_cache_hits``/``chunk_cache_misses`` are *views* over the
    engines' registry-backed counters — each reads the engine's counter
    at call time minus its value when the epoch started — not mutable
    field-level copies, so the numbers can never drift from the engines'
    own accounting.
    """

    def __init__(self):
        self.samples = 0
        self.batches = 0
        self.wait_s = 0.0
        self.total_s = 0.0
        self.transform_s = 0.0
        self._engine_baselines: List[Tuple] = []

    def _track_engines(self, engines) -> None:
        """Snapshot engine counters at epoch start; deltas are the view."""
        self._engine_baselines = [
            (e, e.chunk_cache_hits, e.chunk_cache_misses) for e in engines
        ]

    @property
    def chunk_cache_hits(self) -> int:
        return sum(
            e.chunk_cache_hits - h0 for e, h0, _m0 in self._engine_baselines
        )

    @property
    def chunk_cache_misses(self) -> int:
        return sum(
            e.chunk_cache_misses - m0 for e, _h0, m0 in self._engine_baselines
        )

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.total_s if self.total_s > 0 else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.wait_s / self.total_s if self.total_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "batches": self.batches,
            "samples_per_s": round(self.samples_per_second, 1),
            "stall_fraction": round(self.stall_fraction, 4),
            "total_s": round(self.total_s, 4),
            "chunk_cache_hits": self.chunk_cache_hits,
            "chunk_cache_misses": self.chunk_cache_misses,
        }


class DeepLakeLoader:
    """Iterable of collated batches streaming straight from storage."""

    def __init__(
        self,
        dataset,
        batch_size: int = 1,
        shuffle: bool = False,
        shuffle_mode: str = "chunk",  # 'chunk' | 'naive' | 'none'
        window_chunks: int = 8,
        num_workers: int = 0,
        prefetch_factor: int = 2,
        transform: Optional[Callable[[Dict], Dict]] = None,
        tensors: Optional[Sequence[str]] = None,
        drop_last: bool = False,
        collate: Optional[Callable] = None,
        backend: str = "numpy",
        memory_budget_bytes: Optional[int] = 512 * 1024 * 1024,
        seed: Optional[int] = None,
        distributed: Optional[Tuple[int, int]] = None,  # (rank, world)
        decode: bool = True,
        batched: bool = True,
    ):
        self.dataset = dataset
        self.batch_size = int(batch_size)
        if self.batch_size < 1:
            raise DataLoaderError("batch_size must be >= 1")
        self.shuffle = shuffle
        self.shuffle_mode = shuffle_mode if shuffle else "none"
        self.window_chunks = window_chunks
        self.num_workers = int(num_workers)
        self.prefetch_factor = int(prefetch_factor)
        self.transform = transform
        self.tensor_names = (
            list(tensors) if tensors is not None else list(dataset.tensors)
        )
        if not self.tensor_names:
            raise DataLoaderError("dataset has no tensors to load")
        self.drop_last = drop_last
        self.collate = collate or default_collate
        self.backend = backend
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = seed
        self.distributed = distributed
        self.decode = decode
        #: ``False`` falls back to one read_sample per row — kept for the
        #: batched-vs-per-sample benchmark and as an escape hatch
        self.batched = batched
        self.stats = LoaderStats()
        ds_label = str(getattr(dataset, "path", "") or "dataset")
        self._h_batch = _metrics.histogram(
            "loader.batch_seconds", dataset=ds_label
        )
        self._h_wait = _metrics.histogram(
            "loader.wait_seconds", dataset=ds_label
        )
        self._m_samples = _metrics.counter("loader.samples", dataset=ds_label)
        self._m_batches = _metrics.counter("loader.batches", dataset=ds_label)
        self._g_queue = _metrics.gauge(
            "loader.prefetch_queue_depth", dataset=ds_label
        )

    # ------------------------------------------------------------------ #

    def _qualified(self) -> List[str]:
        if not hasattr(self, "_qualified_cache"):
            self._qualified_cache = [
                self.dataset._qualify(t) for t in self.tensor_names
            ]
        return self._qualified_cache

    def _dominant_engine(self):
        if not hasattr(self, "_dominant_cache"):
            best = None
            best_bytes = -1
            for name in self._qualified():
                engine = self.dataset._engine(name)
                nbytes = engine.meta.max_sample_nbytes
                if nbytes > best_bytes:
                    best_bytes = nbytes
                    best = engine
            self._dominant_cache = best
        return self._dominant_cache

    def _sample_nbytes(self) -> int:
        total = 0
        for name in self._qualified():
            total += self.dataset._engine(name).meta.max_sample_nbytes
        return total

    def _plan_order(self) -> List[int]:
        ds = self.dataset
        lengths = [
            ds._engine(n).num_samples for n in self._qualified()
        ]
        length = min(lengths)
        rows = ds.index.row_indices(length)
        if self.shuffle_mode == "naive":
            rows = naive_shuffle(rows, self.seed)
        elif self.shuffle_mode == "chunk":
            dominant = self._dominant_engine()
            rows = chunk_aware_shuffle(
                rows,
                dominant.chunk_layout(),
                seed=self.seed,
                window_chunks=self.window_chunks,
            )
        else:
            rows = sequential_order(rows)
        if self.distributed:
            rank, world = self.distributed
            rows = shard_for_rank(rows, rank, world)
        return rows

    def _fetch(self, row: int) -> Dict:
        """Per-sample fallback path (``batched=False``)."""
        ds = self.dataset
        out: Dict[str, object] = {}
        for short, name in zip(self.tensor_names, self._qualified()):
            engine = ds._engine(name)
            if self.decode:
                # streaming prefers whole-chunk fetches: neighbours are
                # consumed next and the decoded chunk caches
                value = engine.read_sample(row, prefer_full=True)
            else:
                raw = engine.read_raw(row)
                value = np.frombuffer(raw, dtype=np.uint8)
            out[short] = value
        return self._transformed(out)

    def _transformed(self, sample: Dict) -> Dict:
        if self.transform is not None:
            t0 = time.perf_counter()
            sample = self.transform(sample)
            self.stats.transform_s += time.perf_counter() - t0
        return sample

    def _make_priority_fn(
        self, groups: Sequence[Tuple[int, ...]]
    ) -> Callable[[Tuple[int, ...]], float]:
        """CPU-cost estimate per group: bigger decoded samples cost more,
        so the smart scheduler starts them first.

        Uniform tensors get a constant estimate (no I/O at all).  Ragged
        tensors are answered from ONE
        :meth:`~repro.core.chunk_engine.ChunkEngine.read_shapes_batch`
        sweep over every group's lead row — its per-chunk header cache
        keeps the whole epoch at one tiny metadata read per *chunk*, and
        the batched call shares the chunk-name resolution across rows
        instead of redoing it per submitted group.
        """
        engine = self._dominant_engine()
        interval = engine.meta.shape_interval
        if interval.is_uniform or engine.meta.is_link:
            const = float(engine.meta.max_sample_nbytes)
            return lambda group: const
        memo: Dict[int, float] = {}
        lead_rows = [group[0] for group in groups if group]
        try:
            shapes = engine.read_shapes_batch(lead_rows)
            for row, shape in zip(lead_rows, shapes):
                memo[row] = float(np.prod(shape)) if shape else 0.0
        except Exception:  # noqa: BLE001 - priority is best-effort
            memo.clear()

        def priority(group: Tuple[int, ...]) -> float:
            return memo.get(group[0], 0.0)

        return priority

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        rows = len(self._plan_order())
        if self.drop_last:
            return rows // self.batch_size
        return -(-rows // self.batch_size)

    def _fetch_group(self, rows: Tuple[int, ...]) -> List[Dict]:
        """Fetch one worker group of samples.

        The batched path issues a single ReadPlan for the whole group:
        every chunk the group touches is fetched and decompressed exactly
        once, then all samples are sliced out — instead of ``len(rows)``
        independent per-sample reads.
        """
        if not self.batched or len(rows) == 1:
            # single-row groups (batch_size=1 / tight memory budget) keep
            # the streaming per-sample path: whole-chunk fetch + cache
            return [self._fetch(row) for row in rows]
        columns = self.dataset.read_rows(
            rows, self.tensor_names, decode=self.decode, physical=True
        )
        out = []
        for j in range(len(rows)):
            sample: Dict[str, object] = {}
            for short in self.tensor_names:
                value = columns[short][j]
                if not self.decode and isinstance(value, (bytes, bytearray)):
                    value = np.frombuffer(value, dtype=np.uint8)
                sample[short] = value
            out.append(self._transformed(sample))
        return out

    def _engines(self):
        return [self.dataset._engine(n) for n in self._qualified()]

    def __iter__(self):
        self.stats = LoaderStats()
        rows = self._plan_order()
        inflight = compute_inflight_limit(
            self.num_workers,
            self.prefetch_factor,
            self._sample_nbytes(),
            self.memory_budget_bytes,
        )
        # workers fetch groups of samples, not single samples: one
        # ReadPlan per group amortises fetch + decompress + task-dispatch
        # overhead and keeps workers on one chunk at a time (locality)
        group_size = max(1, min(self.batch_size, inflight, 16))
        groups = group_indices(rows, group_size)
        priority_of = (
            self._make_priority_fn(groups) if self.num_workers else None
        )
        self.stats._track_engines(self._engines())
        stream = prefetched(
            groups,
            self._fetch_group,
            num_workers=self.num_workers,
            inflight_limit=max(1, inflight // group_size),
            priority_of=priority_of,
            queue_gauge=self._g_queue,
        )
        epoch_start = time.perf_counter()
        batch_start = epoch_start
        batch: List[Dict] = []
        try:
            while True:
                wait_start = time.perf_counter()
                try:
                    group = next(stream)
                except StopIteration:
                    break
                waited = time.perf_counter() - wait_start
                self.stats.wait_s += waited
                self._h_wait.observe(waited)
                for sample in group:
                    self.stats.samples += 1
                    self._m_samples.inc()
                    batch.append(sample)
                    if len(batch) == self.batch_size:
                        self.stats.batches += 1
                        self._m_batches.inc()
                        now = time.perf_counter()
                        self._h_batch.observe(now - batch_start)
                        self.stats.total_s = now - epoch_start
                        yield to_backend(self.collate(batch), self.backend)
                        batch = []
                        batch_start = time.perf_counter()
            if batch and not self.drop_last:
                self.stats.batches += 1
                self._m_batches.inc()
                self._h_batch.observe(time.perf_counter() - batch_start)
                yield to_backend(self.collate(batch), self.backend)
        finally:
            self.stats.total_s = time.perf_counter() - epoch_start
            self._g_queue.set(0)
