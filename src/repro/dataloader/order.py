"""Order planning for the streaming dataloader (§3.5).

"One of the key access patterns of Deep Lake is shuffled stream access for
training machine learning models."  Three strategies with different
randomness/locality trade-offs (ablation A3 measures them):

- ``sequential`` — storage order; maximal chunk locality, zero randomness;
- ``naive`` — a full uniform permutation; maximal randomness, worst
  locality (every sample is a random chunk hit);
- ``chunk`` (default when shuffling) — shuffle *chunk order*, then shuffle
  sample order inside a window of several chunks.  Chunks are still
  fetched whole and sequentially-ish while the model sees a well-mixed
  stream — this is how the format avoids "a separate compute cluster for
  running [the] shuffling algorithm".

``shuffle_quality`` quantifies mixing as the mean normalised displacement
of samples from their storage positions (1.0 ≈ perfectly mixed).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def sequential_order(rows: Sequence[int]) -> List[int]:
    return list(rows)


def naive_shuffle(rows: Sequence[int], seed: Optional[int] = None) -> List[int]:
    rng = np.random.default_rng(seed)
    rows = list(rows)
    rng.shuffle(rows)
    return rows


def chunk_aware_shuffle(
    rows: Sequence[int],
    chunk_ranges: Sequence[Tuple[str, int, int]],
    seed: Optional[int] = None,
    window_chunks: int = 8,
) -> List[int]:
    """Shuffle chunk order, then samples within windows of chunks.

    *chunk_ranges* is ``engine.chunk_layout()`` of the dominant tensor:
    (chunk_name, start_sample, end_sample) rows in storage order.
    """
    rng = np.random.default_rng(seed)
    rowset = set(rows)
    groups: List[List[int]] = []
    covered = set()
    for _name, start, end in chunk_ranges:
        group = [i for i in range(start, end) if i in rowset]
        covered.update(group)
        if group:
            groups.append(group)
    stray = [i for i in rows if i not in covered]
    if stray:
        groups.append(list(stray))
    order = rng.permutation(len(groups))
    out: List[int] = []
    window: List[int] = []
    for gi, g in enumerate(order):
        window.extend(groups[g])
        if (gi + 1) % max(1, window_chunks) == 0:
            rng.shuffle(window)
            out.extend(window)
            window = []
    rng.shuffle(window)
    out.extend(window)
    return out


def buffer_shuffle_iter(iterator, buffer_size: int, seed: Optional[int] = None):
    """Streaming reservoir shuffle (the WebDataset-style baseline)."""
    rng = np.random.default_rng(seed)
    buffer = []
    for item in iterator:
        buffer.append(item)
        if len(buffer) >= buffer_size:
            j = int(rng.integers(0, len(buffer)))
            buffer[j], buffer[-1] = buffer[-1], buffer[j]
            yield buffer.pop()
    while buffer:
        j = int(rng.integers(0, len(buffer)))
        buffer[j], buffer[-1] = buffer[-1], buffer[j]
        yield buffer.pop()


def shard_for_rank(rows: Sequence[int], rank: int, world_size: int,
                   drop_tail: bool = True) -> List[int]:
    """Round-robin sharding for distributed training (Fig 10)."""
    if world_size <= 1:
        return list(rows)
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} outside world of {world_size}")
    shard = list(rows[rank::world_size])
    if drop_tail:
        per_rank = len(rows) // world_size
        shard = shard[:per_rank]
    return shard


def shuffle_quality(order: Sequence[int]) -> float:
    """Mean |displacement| / (n/3): 0 = unshuffled, ~1 = uniform random."""
    order = np.asarray(order)
    n = len(order)
    if n < 2:
        return 0.0
    positions = np.arange(n)
    expected_random = n / 3.0  # E|i - j| for uniform permutation
    return float(np.mean(np.abs(order - positions)) / expected_random)


def chunk_locality(order: Sequence[int],
                   chunk_ranges: Sequence[Tuple[str, int, int]]) -> float:
    """Fraction of consecutive reads that stay within one chunk.

    Higher = fewer chunk switches = fewer storage requests while
    streaming.  Sequential order scores ~1; naive shuffle ~chunk/n.
    """
    if len(order) < 2:
        return 1.0
    bounds = []
    for _name, start, end in chunk_ranges:
        bounds.append((start, end))
    def chunk_of(i: int) -> int:
        for ci, (s, e) in enumerate(bounds):
            if s <= i < e:
                return ci
        return -1
    stays = 0
    prev = chunk_of(order[0])
    for i in order[1:]:
        cur = chunk_of(i)
        if cur == prev:
            stays += 1
        prev = cur
    return stays / (len(order) - 1)
