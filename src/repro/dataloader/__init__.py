"""Streaming dataloader (§4.6): order planning, prefetch, collate,
framework handover, with throughput/stall statistics."""

from repro.dataloader.loader import DeepLakeLoader, LoaderStats
from repro.dataloader.collate import default_collate, pad_collate, strict_collate
from repro.dataloader.order import (
    buffer_shuffle_iter,
    chunk_aware_shuffle,
    chunk_locality,
    naive_shuffle,
    sequential_order,
    shard_for_rank,
    shuffle_quality,
)
from repro.dataloader.prefetch import (
    PriorityWorkerPool,
    compute_inflight_limit,
    prefetched,
)

__all__ = [
    "DeepLakeLoader",
    "LoaderStats",
    "default_collate",
    "strict_collate",
    "pad_collate",
    "sequential_order",
    "naive_shuffle",
    "chunk_aware_shuffle",
    "buffer_shuffle_iter",
    "shard_for_rank",
    "shuffle_quality",
    "chunk_locality",
    "PriorityWorkerPool",
    "prefetched",
    "compute_inflight_limit",
]
