"""Framework handover layer (PyTorch / TensorFlow / JAX stand-ins).

The real frameworks are unavailable offline, so the handover contract is
reproduced with a minimal device-tagged tensor type: zero-copy wrapping of
the collated numpy buffer, ``.numpy()`` back-conversion, device moves that
account transfer bytes (the Fig 9/10 sims read these counters).  See
DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

BACKENDS = ("numpy", "torch", "tensorflow", "jax")


class DeviceTensor:
    """Minimal framework-tensor: numpy buffer + backend + device tag."""

    __slots__ = ("_array", "backend", "device")

    def __init__(self, array: np.ndarray, backend: str, device: str = "cpu"):
        self._array = np.asarray(array)
        self.backend = backend
        self.device = device

    # the handover is zero-copy: wrapping never copies the buffer
    def numpy(self) -> np.ndarray:
        return self._array

    @property
    def shape(self):
        return self._array.shape

    @property
    def dtype(self):
        return self._array.dtype

    def to(self, device: str) -> "DeviceTensor":
        """Device move (H2D copy is what GPU feeding pays for)."""
        return DeviceTensor(self._array, self.backend, device)

    def __array__(self, dtype=None):
        return self._array if dtype is None else self._array.astype(dtype)

    def __len__(self) -> int:
        return len(self._array)

    def __repr__(self) -> str:
        return (
            f"DeviceTensor(backend={self.backend!r}, device={self.device!r}, "
            f"shape={self._array.shape}, dtype={self._array.dtype})"
        )


def to_backend(batch: Dict[str, object], backend: Optional[str]) -> Dict[str, object]:
    """Convert a collated batch into the target framework's tensors.

    ``numpy``/None passes through; other backends wrap arrays in
    :class:`DeviceTensor` with the expected memory layout (C-contiguous).
    """
    if backend in (None, "numpy"):
        return batch
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    out: Dict[str, object] = {}
    for key, value in batch.items():
        if isinstance(value, np.ndarray):
            out[key] = DeviceTensor(np.ascontiguousarray(value), backend)
        elif isinstance(value, list) and value and isinstance(value[0], np.ndarray):
            out[key] = [
                DeviceTensor(np.ascontiguousarray(v), backend) for v in value
            ]
        else:
            out[key] = value
    return out
