"""Deep-learning framework handover (PyTorch/TensorFlow/JAX stand-ins)."""

from repro.integrations.frameworks import BACKENDS, DeviceTensor, to_backend

__all__ = ["BACKENDS", "DeviceTensor", "to_backend"]
