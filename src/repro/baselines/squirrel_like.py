"""Squirrel-style MessagePack shard store (Fig 7 comparator).

Records are serialised with a compact msgpack-like binary encoding
(typed tag + payload), grouped into shard files compressed as a whole.
Reads are shard-sequential with a driver that fans shards out to workers.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.dataloader.prefetch import prefetched
from repro.exceptions import FormatError
from repro.storage.local import LocalProvider
from repro.storage.provider import StorageProvider

# type tags of the mini-msgpack encoding
_T_INT = 0
_T_FLOAT = 1
_T_STR = 2
_T_BYTES = 3
_T_NDARRAY = 4


def pack_record(record: Dict[str, object]) -> bytes:
    parts = [struct.pack("<H", len(record))]
    for key, value in sorted(record.items()):
        kb = key.encode()
        if isinstance(value, (int, np.integer)):
            tag, payload = _T_INT, struct.pack("<q", int(value))
        elif isinstance(value, (float, np.floating)):
            tag, payload = _T_FLOAT, struct.pack("<d", float(value))
        elif isinstance(value, str):
            tag, payload = _T_STR, value.encode("utf-8")
        elif isinstance(value, np.ndarray):
            head = value.dtype.str.encode()
            dims = struct.pack(f"<B{value.ndim}q", value.ndim, *value.shape)
            tag = _T_NDARRAY
            payload = struct.pack("<B", len(head)) + head + dims + \
                np.ascontiguousarray(value).tobytes()
        else:
            tag, payload = _T_BYTES, bytes(value)
        parts.append(struct.pack("<HBI", len(kb), tag, len(payload)))
        parts.append(kb)
        parts.append(payload)
    return b"".join(parts)


def unpack_record(data: bytes, offset: int = 0) -> Tuple[Dict, int]:
    (n,) = struct.unpack_from("<H", data, offset)
    offset += 2
    out: Dict[str, object] = {}
    for _ in range(n):
        klen, tag, plen = struct.unpack_from("<HBI", data, offset)
        offset += 7
        key = data[offset : offset + klen].decode()
        offset += klen
        payload = data[offset : offset + plen]
        offset += plen
        if tag == _T_INT:
            out[key] = struct.unpack("<q", payload)[0]
        elif tag == _T_FLOAT:
            out[key] = struct.unpack("<d", payload)[0]
        elif tag == _T_STR:
            out[key] = payload.decode("utf-8")
        elif tag == _T_NDARRAY:
            (hlen,) = struct.unpack_from("<B", payload, 0)
            dtype = np.dtype(payload[1 : 1 + hlen].decode())
            (ndim,) = struct.unpack_from("<B", payload, 1 + hlen)
            shape = struct.unpack_from(f"<{ndim}q", payload, 2 + hlen)
            arr = np.frombuffer(
                payload, dtype=dtype, offset=2 + hlen + 8 * ndim
            ).reshape(shape)
            out[key] = arr.copy()
        else:
            out[key] = payload
    return out, offset


def write_shards(
    storage_or_root,
    records: Iterable[Dict[str, object]],
    records_per_shard: int = 256,
    compress: bool = True,
) -> List[str]:
    storage = (
        storage_or_root
        if isinstance(storage_or_root, StorageProvider)
        else LocalProvider(storage_or_root)
    )
    keys: List[str] = []
    buf: List[bytes] = []

    def flush() -> None:
        nonlocal buf
        if not buf:
            return
        blob = struct.pack("<I", len(buf)) + b"".join(buf)
        if compress:
            blob = b"Z" + zlib.compress(blob, 1)
        else:
            blob = b"R" + blob
        key = f"shard-{len(keys):05d}.sq"
        storage[key] = blob
        keys.append(key)
        buf = []

    for record in records:
        buf.append(pack_record(record))
        if len(buf) >= records_per_shard:
            flush()
    flush()
    return keys


def iter_shard(storage: StorageProvider, key: str) -> Iterator[Dict]:
    blob = storage[key]
    mode, body = blob[:1], blob[1:]
    if mode == b"Z":
        body = zlib.decompress(body)
    elif mode != b"R":
        raise FormatError(f"bad squirrel shard header in {key}")
    (count,) = struct.unpack_from("<I", body, 0)
    offset = 4
    for _ in range(count):
        record, offset = unpack_record(body, offset)
        yield record


class SquirrelLoader:
    """Shard-parallel loader: workers each stream whole shards.

    Records may hold decoded arrays or encoded image payloads (bytes);
    encoded payloads are decoded with *compression* at load time, like
    the real library's jpeg-in-msgpack layout.
    """

    name = "squirrel"

    def __init__(self, storage_or_root, num_workers: int = 2,
                 seed: Optional[int] = 0, compression: str = "jpeg"):
        self.storage = (
            storage_or_root
            if isinstance(storage_or_root, StorageProvider)
            else LocalProvider(storage_or_root)
        )
        self.num_workers = num_workers
        self.seed = seed
        self.compression = compression

    def iter_batches(self, batch_size: int) -> Iterator[Dict]:
        keys = [k for k in self.storage.list_prefix("") if k.endswith(".sq")]
        rng = np.random.default_rng(self.seed)
        rng.shuffle(keys)
        def load_shard(i: int) -> List[Dict]:
            out = []
            for record in iter_shard(self.storage, keys[i]):
                image = record.get("image")
                if isinstance(image, (bytes, bytearray)):
                    from repro.compression import decompress_array

                    record = dict(record)
                    record["image"] = decompress_array(
                        image, self.compression
                    )
                out.append(record)
            return out

        shards = prefetched(
            list(range(len(keys))),
            load_shard,
            num_workers=self.num_workers,
            inflight_limit=max(1, self.num_workers),
        )
        batch: List[Dict] = []
        for shard in shards:
            for record in shard:
                batch.append(record)
                if len(batch) == batch_size:
                    yield self._collate(batch)
                    batch = []
        if batch:
            yield self._collate(batch)

    @staticmethod
    def _collate(batch: List[Dict]) -> Dict:
        images = [b["image"] for b in batch]
        labels = np.asarray([b.get("label", -1) for b in batch])
        shapes = {np.asarray(im).shape for im in images}
        return {
            "image": np.stack(images) if len(shapes) == 1 else images,
            "label": labels,
        }
