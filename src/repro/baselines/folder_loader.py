"""One-file-per-sample "ImageFolder" loader (the native-PyTorch baseline
of Fig 7, and the file layout the Fig 8/9 cloud modes copy around).

Every sample is an individual encoded file under ``class_x/`` folders.
Random access means one storage request per sample — cheap on a local
filesystem, ruinous on object storage (per-request overhead), which is
precisely the contrast Figs 7-9 draw.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.compression import decompress_array
from repro.dataloader.prefetch import prefetched
from repro.storage.local import LocalProvider
from repro.storage.provider import StorageProvider


class ImageFolderLoader:
    """Lists class folders, decodes one file per sample on worker threads."""

    name = "pytorch"

    def __init__(
        self,
        storage_or_root,
        num_workers: int = 4,
        shuffle: bool = True,
        seed: Optional[int] = 0,
        compression: str = "jpeg",
    ):
        self.storage = (
            storage_or_root
            if isinstance(storage_or_root, StorageProvider)
            else LocalProvider(storage_or_root)
        )
        self.num_workers = num_workers
        self.shuffle = shuffle
        self.seed = seed
        self.compression = compression
        self._index: Optional[List[Tuple[str, int]]] = None

    def index(self) -> List[Tuple[str, int]]:
        """(key, class) pairs discovered by listing the tree."""
        if self._index is None:
            entries = []
            for key in self.storage.list_prefix(""):
                parts = key.split("/")
                if len(parts) < 2 or not parts[0].startswith("class_"):
                    continue
                label = int(parts[0].split("_")[1])
                entries.append((key, label))
            self._index = entries
        return self._index

    def __len__(self) -> int:
        return len(self.index())

    def _fetch(self, i: int) -> Dict:
        key, label = self.index()[i]
        payload = self.storage[key]  # one request per sample
        return {
            "image": decompress_array(payload, self.compression),
            "label": label,
        }

    def iter_batches(self, batch_size: int) -> Iterator[Dict]:
        order = list(range(len(self)))
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(order)
        stream = prefetched(
            order,
            self._fetch,
            num_workers=self.num_workers,
            inflight_limit=max(1, self.num_workers * 2),
        )
        batch: List[Dict] = []
        for sample in stream:
            batch.append(sample)
            if len(batch) == batch_size:
                yield self._collate(batch)
                batch = []
        if batch:
            yield self._collate(batch)

    @staticmethod
    def _collate(batch: List[Dict]) -> Dict:
        images = [b["image"] for b in batch]
        labels = np.asarray([b["label"] for b in batch])
        shapes = {im.shape for im in images}
        return {
            "image": np.stack(images) if len(shapes) == 1 else images,
            "label": labels,
        }


def upload_folder_to_provider(
    root: str, provider: StorageProvider
) -> Tuple[int, int]:
    """Copy an on-disk imagefolder into a (simulated) object store.

    Returns (files, bytes) — the File Mode download mirrored in reverse.
    """
    local = LocalProvider(root)
    files = 0
    total = 0
    for key in local.list_prefix(""):
        payload = local[key]
        provider[key] = payload
        files += 1
        total += len(payload)
    return files, total
