"""WebDataset-style tar-shard format + sequential streaming loader.

Samples are files inside POSIX tar archives ("shards"): ``{key}.jpg`` and
``{key}.cls`` pairs.  Reading is strictly sequential per shard; randomness
comes from shard order + a reservoir shuffle buffer — the design WebDataset
uses to make object storage reads sequential.  The loader can read shards
from any storage provider, so the Fig 8 streaming bench points it at the
simulated S3/MinIO stores.
"""

from __future__ import annotations

import io
import tarfile
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.compression import compress_array, decompress_array
from repro.dataloader.order import buffer_shuffle_iter
from repro.storage.local import LocalProvider
from repro.storage.provider import StorageProvider


def _storage(storage_or_root) -> StorageProvider:
    if isinstance(storage_or_root, StorageProvider):
        return storage_or_root
    return LocalProvider(storage_or_root)


def write_shards(
    storage_or_root,
    samples: Iterable[Tuple[np.ndarray, int]],
    samples_per_shard: int = 512,
    compression: str = "jpeg",
) -> List[str]:
    """Write (image, label) pairs into tar shards; returns shard keys."""
    storage = _storage(storage_or_root)
    shard_keys: List[str] = []
    buf: Optional[io.BytesIO] = None
    tar: Optional[tarfile.TarFile] = None
    count_in_shard = 0

    def open_shard() -> None:
        nonlocal buf, tar, count_in_shard
        buf = io.BytesIO()
        tar = tarfile.open(fileobj=buf, mode="w")
        count_in_shard = 0

    def close_shard() -> None:
        nonlocal buf, tar
        if tar is None:
            return
        tar.close()
        key = f"shard-{len(shard_keys):05d}.tar"
        storage[key] = buf.getvalue()
        shard_keys.append(key)
        buf = None
        tar = None

    def add_file(name: str, payload: bytes) -> None:
        info = tarfile.TarInfo(name=name)
        info.size = len(payload)
        tar.addfile(info, io.BytesIO(payload))

    open_shard()
    for i, (image, label) in enumerate(samples):
        if count_in_shard >= samples_per_shard:
            close_shard()
            open_shard()
        key = f"{i:08d}"
        add_file(f"{key}.jpg", compress_array(np.asarray(image), compression))
        add_file(f"{key}.cls", str(int(label)).encode())
        count_in_shard += 1
    close_shard()
    return shard_keys


def iter_shard(
    storage: StorageProvider, shard_key: str, compression: str = "jpeg"
) -> Iterator[Dict]:
    """Stream one shard sequentially, grouping files by sample key."""
    blob = storage[shard_key]  # sequential whole-shard fetch, like wds
    with tarfile.open(fileobj=io.BytesIO(blob), mode="r") as tar:
        current_key = None
        sample: Dict = {}
        for member in tar:
            if not member.isfile():
                continue
            key, _, ext = member.name.rpartition(".")
            if current_key is not None and key != current_key and sample:
                yield sample
                sample = {}
            current_key = key
            payload = tar.extractfile(member).read()
            if ext == "jpg":
                sample["image"] = decompress_array(payload, compression)
            elif ext == "cls":
                sample["label"] = int(payload.decode())
            else:
                sample[ext] = payload
        if sample:
            yield sample


class WebDatasetLoader:
    """Sequential shard streaming + reservoir shuffle + batching."""

    name = "webdataset"

    def __init__(
        self,
        storage_or_root,
        shuffle_buffer: int = 1000,
        shuffle_shards: bool = True,
        seed: Optional[int] = 0,
        compression: str = "jpeg",
    ):
        self.storage = _storage(storage_or_root)
        self.shuffle_buffer = shuffle_buffer
        self.shuffle_shards = shuffle_shards
        self.seed = seed
        self.compression = compression

    def shard_keys(self) -> List[str]:
        return [k for k in self.storage.list_prefix("") if k.endswith(".tar")]

    def iter_samples(self) -> Iterator[Dict]:
        keys = self.shard_keys()
        if self.shuffle_shards:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(keys)
        def stream():
            for key in keys:
                yield from iter_shard(self.storage, key, self.compression)
        if self.shuffle_buffer > 1:
            yield from buffer_shuffle_iter(
                stream(), self.shuffle_buffer, seed=self.seed
            )
        else:
            yield from stream()

    def iter_batches(self, batch_size: int) -> Iterator[Dict]:
        batch: List[Dict] = []
        for sample in self.iter_samples():
            batch.append(sample)
            if len(batch) == batch_size:
                yield _collate(batch)
                batch = []
        if batch:
            yield _collate(batch)


def _collate(batch: List[Dict]) -> Dict:
    images = [b["image"] for b in batch]
    labels = np.asarray([b.get("label", -1) for b in batch])
    shapes = {im.shape for im in images}
    return {
        "image": np.stack(images) if len(shapes) == 1 else images,
        "label": labels,
    }
