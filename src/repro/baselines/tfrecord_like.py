"""TFRecord-style length-delimited record stream (Fig 6 comparator).

Framing follows the real TFRecord file format: ``u64 length | u32
masked-crc(length) | payload | u32 masked-crc(payload)``.  Payloads are a
minimal feature map (string key -> bytes/int64 value), the role protobuf
``tf.train.Example`` plays.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from repro.compression import compress_array, decompress_array
from repro.exceptions import ChunkCorruptedError


def _masked_crc(data: bytes) -> int:
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return ((crc >> 15 | crc << 17) + 0xA282EAD8) & 0xFFFFFFFF


def _encode_example(features: Dict[str, object]) -> bytes:
    parts = [struct.pack("<H", len(features))]
    for key, value in sorted(features.items()):
        kb = key.encode()
        if isinstance(value, (int, np.integer)):
            tag, payload = 0, struct.pack("<q", int(value))
        else:
            tag, payload = 1, bytes(value)
        parts.append(struct.pack("<HBI", len(kb), tag, len(payload)))
        parts.append(kb)
        parts.append(payload)
    return b"".join(parts)


def _decode_example(data: bytes) -> Dict[str, object]:
    (n,) = struct.unpack_from("<H", data, 0)
    off = 2
    out: Dict[str, object] = {}
    for _ in range(n):
        klen, tag, plen = struct.unpack_from("<HBI", data, off)
        off += 7
        key = data[off : off + klen].decode()
        off += klen
        payload = data[off : off + plen]
        off += plen
        out[key] = struct.unpack("<q", payload)[0] if tag == 0 else payload
    return out


def write_records(
    path: str,
    samples: Iterable[Tuple[np.ndarray, int]],
    compression: str = "jpeg",
) -> int:
    n = 0
    with open(path, "wb") as f:
        for image, label in samples:
            example = _encode_example(
                {
                    "image": compress_array(np.asarray(image), compression),
                    "label": int(label),
                }
            )
            length = struct.pack("<Q", len(example))
            f.write(length)
            f.write(struct.pack("<I", _masked_crc(length)))
            f.write(example)
            f.write(struct.pack("<I", _masked_crc(example)))
            n += 1
    return n


def read_records(
    path: str, compression: str = "jpeg", verify: bool = True
) -> Iterator[Dict]:
    """Sequential scan (TFRecord supports nothing else)."""
    with open(path, "rb") as f:
        while True:
            head = f.read(12)
            if not head:
                return
            if len(head) < 12:
                raise ChunkCorruptedError("truncated tfrecord length header")
            (length,) = struct.unpack_from("<Q", head, 0)
            (lcrc,) = struct.unpack_from("<I", head, 8)
            if verify and _masked_crc(head[:8]) != lcrc:
                raise ChunkCorruptedError("tfrecord length crc mismatch")
            payload = f.read(length)
            (pcrc,) = struct.unpack("<I", f.read(4))
            if verify and _masked_crc(payload) != pcrc:
                raise ChunkCorruptedError("tfrecord payload crc mismatch")
            features = _decode_example(payload)
            yield {
                "image": decompress_array(features["image"], compression),
                "label": int(features["label"]),
            }
