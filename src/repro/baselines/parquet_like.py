"""Parquet-style columnar table: row groups, per-column compressed chunks,
footer metadata (Fig 6 comparator; also the LAION URL-table source of §6.5
and the ingestion connectors' tabular format).

Layout::

    "PARS" | row-group column chunks ... | footer json | u32 len | "PARS"

The footer records schema and per-column-chunk (offset, size) per row
group, enabling column pruning and row-group–granular ranged reads — the
things Parquet is good at — while 3 MB image cells make it exactly as
awkward as the paper argues (§2.2, §7.1).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.compression import compress_bytes, decompress_bytes
from repro.exceptions import FormatError
from repro.storage.local import LocalProvider
from repro.storage.provider import StorageProvider
from repro.util.json_util import json_dumps, json_loads

MAGIC = b"PARS"

#: supported logical column types
TYPES = ("int64", "float64", "bytes", "str")


def _encode_column(name: str, ctype: str, values: Sequence) -> bytes:
    if ctype == "int64":
        return np.asarray(values, dtype=np.int64).tobytes()
    if ctype == "float64":
        return np.asarray(values, dtype=np.float64).tobytes()
    # variable length: u32 count + offsets + concatenated payloads
    blobs = [
        v.encode("utf-8") if ctype == "str" else bytes(v) for v in values
    ]
    offsets = np.zeros(len(blobs) + 1, dtype=np.uint64)
    np.cumsum([len(b) for b in blobs], out=offsets[1:])
    return (
        struct.pack("<I", len(blobs))
        + offsets.tobytes()
        + b"".join(blobs)
    )


def _decode_column(ctype: str, data: bytes, n: int) -> List:
    if ctype == "int64":
        return np.frombuffer(data, dtype=np.int64, count=n).tolist()
    if ctype == "float64":
        return np.frombuffer(data, dtype=np.float64, count=n).tolist()
    (count,) = struct.unpack_from("<I", data, 0)
    offsets = np.frombuffer(data, dtype=np.uint64, count=count + 1, offset=4)
    base = 4 + 8 * (count + 1)
    out = []
    for i in range(count):
        blob = data[base + int(offsets[i]) : base + int(offsets[i + 1])]
        out.append(blob.decode("utf-8") if ctype == "str" else blob)
    return out


class ParquetLikeFile:
    """Reader with column pruning and row-group selection."""

    def __init__(self, storage: StorageProvider, key: str):
        self.storage = storage
        self.key = key
        tail = storage.get_bytes(key, -8, None)
        if tail[4:] != MAGIC:
            raise FormatError(f"{key} is not a parquet-like file")
        (footer_len,) = struct.unpack("<I", tail[:4])
        footer = storage.get_bytes(key, -(8 + footer_len), -8)
        meta = json_loads(footer)
        self.schema: Dict[str, str] = meta["schema"]
        self.row_groups: List[dict] = meta["row_groups"]
        self.compression: Optional[str] = meta.get("compression")

    @property
    def num_rows(self) -> int:
        return sum(g["num_rows"] for g in self.row_groups)

    @property
    def columns(self) -> List[str]:
        return list(self.schema)

    def read(
        self,
        columns: Optional[Sequence[str]] = None,
        row_groups: Optional[Sequence[int]] = None,
    ) -> Dict[str, List]:
        """Fetch only the requested column chunks (ranged reads)."""
        columns = list(columns) if columns else list(self.schema)
        for c in columns:
            if c not in self.schema:
                raise FormatError(f"no column {c!r}; have {list(self.schema)}")
        groups = (
            [self.row_groups[i] for i in row_groups]
            if row_groups is not None
            else self.row_groups
        )
        out: Dict[str, List] = {c: [] for c in columns}
        for group in groups:
            for col in columns:
                off, size = group["chunks"][col]
                raw = self.storage.get_bytes(self.key, off, off + size)
                raw = decompress_bytes(raw, self.compression)
                out[col].extend(
                    _decode_column(self.schema[col], raw, group["num_rows"])
                )
        return out


def write_table(
    storage_or_root,
    key: str,
    columns: Dict[str, List],
    schema: Optional[Dict[str, str]] = None,
    row_group_size: int = 1024,
    compression: Optional[str] = "zstd",
) -> ParquetLikeFile:
    """Write a column dict into a parquet-like file at *key*."""
    storage = (
        storage_or_root
        if isinstance(storage_or_root, StorageProvider)
        else LocalProvider(storage_or_root)
    )
    names = list(columns)
    if not names:
        raise FormatError("table needs at least one column")
    n = len(columns[names[0]])
    for name in names:
        if len(columns[name]) != n:
            raise FormatError("all columns must have equal length")
    if schema is None:
        schema = {}
        for name in names:
            sample = columns[name][0] if n else b""
            if isinstance(sample, (int, np.integer)):
                schema[name] = "int64"
            elif isinstance(sample, (float, np.floating)):
                schema[name] = "float64"
            elif isinstance(sample, str):
                schema[name] = "str"
            else:
                schema[name] = "bytes"
    for name, ctype in schema.items():
        if ctype not in TYPES:
            raise FormatError(f"unsupported column type {ctype!r}")

    blob = bytearray(MAGIC)
    row_groups = []
    for start in range(0, max(n, 1), row_group_size):
        stop = min(start + row_group_size, n)
        if stop <= start:
            break
        chunks = {}
        for name in names:
            enc = _encode_column(name, schema[name], columns[name][start:stop])
            enc = compress_bytes(enc, compression)
            chunks[name] = [len(blob), len(enc)]
            blob.extend(enc)
        row_groups.append({"num_rows": stop - start, "chunks": chunks})
    footer = json_dumps(
        {"schema": schema, "row_groups": row_groups, "compression": compression}
    )
    blob.extend(footer)
    blob.extend(struct.pack("<I", len(footer)))
    blob.extend(MAGIC)
    storage[key] = bytes(blob)
    return ParquetLikeFile(storage, key)


def write_images(
    storage_or_root,
    images: Iterable[np.ndarray],
    n: int,
    compression: Optional[str] = None,
) -> ParquetLikeFile:
    """Fig 6 writer: images as a bytes column (the awkward case)."""
    rows = [np.ascontiguousarray(img).tobytes() for img in images]
    return write_table(
        storage_or_root,
        "images.pars",
        {"image": rows, "index": list(range(len(rows)))},
        schema={"image": "bytes", "index": "int64"},
        row_group_size=16,  # a few 3MB cells per group
        compression=compression or "zstd",
    )
