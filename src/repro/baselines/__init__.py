"""Comparator formats and dataloaders the paper benchmarks against.

Each module re-implements a format's *layout* from scratch so its
trade-offs appear for real (DESIGN.md §1): chunk-grid array stores
(zarr/n5), tar shards (webdataset), a single-file page-aligned binary
(ffcv beton), length-delimited records (tfrecord), columnar row groups
(parquet), msgpack shards (squirrel), and the one-file-per-sample
imagefolder layout (native pytorch)."""

from repro.baselines import (  # noqa: F401
    ffcv_like,
    folder_loader,
    n5_like,
    parquet_like,
    squirrel_like,
    tfrecord_like,
    webdataset_like,
    zarr_like,
)
from repro.baselines.ffcv_like import BetonReader, FFCVLoader, write_beton
from repro.baselines.folder_loader import (
    ImageFolderLoader,
    upload_folder_to_provider,
)
from repro.baselines.parquet_like import ParquetLikeFile, write_table
from repro.baselines.squirrel_like import SquirrelLoader
from repro.baselines.webdataset_like import WebDatasetLoader

__all__ = [
    "zarr_like",
    "n5_like",
    "webdataset_like",
    "ffcv_like",
    "tfrecord_like",
    "parquet_like",
    "squirrel_like",
    "folder_loader",
    "write_beton",
    "BetonReader",
    "FFCVLoader",
    "WebDatasetLoader",
    "SquirrelLoader",
    "ImageFolderLoader",
    "ParquetLikeFile",
    "write_table",
    "upload_folder_to_provider",
]
