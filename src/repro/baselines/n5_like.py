"""N5-style chunked array store (Fig 6 comparator).

Like the zarr-like store but with N5's conventions: nested chunk paths
(``0/0/0/0`` instead of dotted keys), per-chunk binary headers (mode +
dims + chunk shape), gzip as the default codec, and ``attributes.json``
metadata.  The extra per-chunk header/paths make it marginally slower to
write — matching the ordering TensorStore shows between the two.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.compression import compress_bytes, decompress_bytes
from repro.exceptions import FormatError
from repro.storage.local import LocalProvider
from repro.storage.provider import StorageProvider
from repro.util.json_util import json_dumps, json_loads


class N5LikeArray:
    META_KEY = "attributes.json"

    def __init__(self, storage: StorageProvider):
        self.storage = storage
        meta = json_loads(storage[self.META_KEY])
        self.shape = tuple(meta["dimensions"])
        self.chunks = tuple(meta["blockSize"])
        self.dtype = np.dtype(meta["dataType"])
        self.compression = meta.get("compression", {}).get("type", "gzip")

    @classmethod
    def create(
        cls,
        storage: StorageProvider,
        shape: Sequence[int],
        chunks: Sequence[int],
        dtype,
        compression: str = "gzip",
    ) -> "N5LikeArray":
        storage[cls.META_KEY] = json_dumps(
            {
                "dimensions": list(shape),
                "blockSize": list(chunks),
                "dataType": np.dtype(dtype).name,
                "compression": {"type": compression},
            }
        )
        return cls(storage)

    def _chunk_key(self, grid_index: Sequence[int]) -> str:
        return "/".join(str(g) for g in grid_index)

    def write_chunk(self, grid_index: Sequence[int], data: np.ndarray) -> None:
        data = np.ascontiguousarray(data.astype(self.dtype))
        # N5 block header: mode(u16), ndim(u16), dims(u32 each)
        header = struct.pack(">HH", 0, data.ndim) + struct.pack(
            f">{data.ndim}I", *data.shape
        )
        payload = compress_bytes(data.tobytes(), self.compression)
        self.storage[self._chunk_key(grid_index)] = header + payload

    def read_chunk(self, grid_index: Sequence[int]) -> np.ndarray:
        blob = self.storage[self._chunk_key(grid_index)]
        _mode, ndim = struct.unpack_from(">HH", blob, 0)
        dims = struct.unpack_from(f">{ndim}I", blob, 4)
        payload = decompress_bytes(blob[4 + 4 * ndim :], self.compression)
        return np.frombuffer(payload, dtype=self.dtype).reshape(dims).copy()


def write_images(
    storage_or_root,
    images: Iterable[np.ndarray],
    n: int,
    compression: str = "gzip",
) -> N5LikeArray:
    """Fig 6 writer: serial write of n uniform images."""
    storage = (
        storage_or_root
        if isinstance(storage_or_root, StorageProvider)
        else LocalProvider(storage_or_root)
    )
    images = iter(images)
    first = np.asarray(next(images))
    arr = N5LikeArray.create(
        storage,
        shape=(n, *first.shape),
        chunks=(1, *first.shape),
        dtype=first.dtype,
        compression=compression,
    )
    arr.write_chunk((0, 0, 0, 0), first[np.newaxis])
    for i, img in enumerate(images, start=1):
        img = np.asarray(img)
        if img.shape != first.shape:
            raise FormatError("n5-like arrays are statically shaped")
        arr.write_chunk((i, 0, 0, 0), img[np.newaxis])
    return arr


def read_image(storage_or_root, index: int) -> np.ndarray:
    storage = (
        storage_or_root
        if isinstance(storage_or_root, StorageProvider)
        else LocalProvider(storage_or_root)
    )
    return N5LikeArray(storage).read_chunk((index, 0, 0, 0))[0]
