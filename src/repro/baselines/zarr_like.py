"""Zarr-style statically chunked array store (Fig 6 comparator).

One n-dimensional array per store; a fixed chunk grid; one blob per grid
cell under ``c/<i>.<j>...``; JSON metadata in ``.zarray``.  This is the
"statically chunked array format" the paper contrasts TSF against (§3.2):
uniform shapes only, chunk grid fixed at creation, no ragged samples.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.compression import compress_bytes, decompress_bytes
from repro.exceptions import FormatError
from repro.storage.local import LocalProvider
from repro.storage.provider import StorageProvider
from repro.util.json_util import json_dumps, json_loads
from repro.util.shape import ceildiv


class ZarrLikeArray:
    """Fixed-shape chunked array on a storage provider."""

    META_KEY = ".zarray"

    def __init__(self, storage: StorageProvider):
        self.storage = storage
        meta = json_loads(storage[self.META_KEY])
        self.shape = tuple(meta["shape"])
        self.chunks = tuple(meta["chunks"])
        self.dtype = np.dtype(meta["dtype"])
        self.compressor = meta.get("compressor")

    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        storage: StorageProvider,
        shape: Sequence[int],
        chunks: Sequence[int],
        dtype,
        compressor: Optional[str] = "zstd",
    ) -> "ZarrLikeArray":
        if len(shape) != len(chunks):
            raise FormatError("chunk rank must match array rank")
        storage[cls.META_KEY] = json_dumps(
            {
                "zarr_format": 2,
                "shape": list(shape),
                "chunks": list(chunks),
                "dtype": np.dtype(dtype).str,
                "compressor": compressor,
            }
        )
        return cls(storage)

    def _grid(self) -> Tuple[int, ...]:
        return tuple(ceildiv(s, c) for s, c in zip(self.shape, self.chunks))

    def _chunk_key(self, grid_index: Sequence[int]) -> str:
        return "c/" + ".".join(str(g) for g in grid_index)

    # ------------------------------------------------------------------ #

    def write_chunk(self, grid_index: Sequence[int], data: np.ndarray) -> None:
        expected = tuple(
            min(self.chunks[d], self.shape[d] - grid_index[d] * self.chunks[d])
            for d in range(len(self.shape))
        )
        if tuple(data.shape) != expected:
            raise FormatError(
                f"chunk {tuple(grid_index)} expects shape {expected}, got "
                f"{data.shape}"
            )
        payload = np.ascontiguousarray(data.astype(self.dtype)).tobytes()
        payload = compress_bytes(payload, self.compressor)
        self.storage[self._chunk_key(grid_index)] = payload

    def read_chunk(self, grid_index: Sequence[int]) -> np.ndarray:
        raw = decompress_bytes(
            self.storage[self._chunk_key(grid_index)], self.compressor
        )
        shape = tuple(
            min(self.chunks[d], self.shape[d] - grid_index[d] * self.chunks[d])
            for d in range(len(self.shape))
        )
        return np.frombuffer(raw, dtype=self.dtype).reshape(shape).copy()

    def write_leading(self, index: int, sample: np.ndarray) -> None:
        """Write one slot along axis 0 (chunks must be (1, ...))."""
        if self.chunks[0] != 1:
            raise FormatError("write_leading requires chunks[0] == 1")
        grid = (index, *([0] * (len(self.shape) - 1)))
        self.write_chunk(grid, sample[np.newaxis])

    def read_leading(self, index: int) -> np.ndarray:
        if self.chunks[0] != 1:
            raise FormatError("read_leading requires chunks[0] == 1")
        return self.read_chunk((index, *([0] * (len(self.shape) - 1))))[0]


def write_images(
    storage_or_root,
    images: Iterable[np.ndarray],
    n: int,
    compressor: Optional[str] = "zstd",
) -> ZarrLikeArray:
    """Fig 6 writer: serially store *n* uniform images as (n, H, W, C)."""
    storage = (
        storage_or_root
        if isinstance(storage_or_root, StorageProvider)
        else LocalProvider(storage_or_root)
    )
    images = iter(images)
    first = np.asarray(next(images))
    arr = ZarrLikeArray.create(
        storage,
        shape=(n, *first.shape),
        chunks=(1, *first.shape),
        dtype=first.dtype,
        compressor=compressor,
    )
    arr.write_chunk((0, 0, 0, 0), first[None])
    for i, img in enumerate(images, start=1):
        img = np.asarray(img)
        if img.shape != first.shape:
            raise FormatError(
                "zarr-like arrays are statically shaped; ragged sample "
                f"{img.shape} != {first.shape} (this is TSF's advantage)"
            )
        arr.write_chunk((i, 0, 0, 0), img[None])
    return arr


def read_image(storage_or_root, index: int) -> np.ndarray:
    storage = (
        storage_or_root
        if isinstance(storage_or_root, StorageProvider)
        else LocalProvider(storage_or_root)
    )
    arr = ZarrLikeArray(storage)
    return arr.read_chunk((index, 0, 0, 0))[0]
