"""FFCV-style single-file "beton" format + memmap loader (Fig 6/7
comparator).

One file holds everything: a fixed-size header, a per-sample index table
(offset, length, label, height, width, channels), page-aligned payload
region.  The loader memory-maps the file and decodes payloads on worker
threads in a quasi-random page-friendly order — the design FFCV uses to
saturate local NVMe.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.compression import compress_array, decompress_array
from repro.dataloader.prefetch import prefetched
from repro.exceptions import FormatError

MAGIC = b"BET1"
PAGE = 4096
_HEADER = struct.Struct("<4sQQQ")  # magic, n_samples, index_off, data_off
_ROW = struct.Struct("<QQqIII")  # offset, length, label, h, w, c


def write_beton(
    path: str,
    samples: Iterable[Tuple[np.ndarray, int]],
    compression: Optional[str] = "jpeg",
) -> int:
    """Serial single-file write; returns sample count."""
    payloads: List[bytes] = []
    rows: List[Tuple[int, int, int, int, int, int]] = []
    offset = 0
    for image, label in samples:
        image = np.asarray(image)
        payload = (
            compress_array(image, compression) if compression else image.tobytes()
        )
        pad = (-len(payload)) % 64  # keep payloads 64B aligned
        payloads.append(payload + b"\x00" * pad)
        h, w = image.shape[:2]
        c = image.shape[2] if image.ndim == 3 else 1
        rows.append((offset, len(payload), int(label), h, w, c))
        offset += len(payload) + pad
    n = len(rows)
    index_off = _HEADER.size
    data_off = index_off + n * _ROW.size
    data_off += (-data_off) % PAGE  # page-align the data region
    with open(path, "wb") as f:
        f.write(_HEADER.pack(MAGIC, n, index_off, data_off))
        for row in rows:
            f.write(_ROW.pack(*row))
        f.write(b"\x00" * (data_off - index_off - n * _ROW.size))
        for payload in payloads:
            f.write(payload)
    return n


class BetonReader:
    """Memory-mapped random access into a beton file."""

    def __init__(self, path: str, compression: Optional[str] = "jpeg"):
        self.path = path
        self.compression = compression
        with open(path, "rb") as f:
            head = f.read(_HEADER.size)
        magic, n, index_off, data_off = _HEADER.unpack(head)
        if magic != MAGIC:
            raise FormatError(f"{path} is not a beton file")
        self.n = n
        self.data_off = data_off
        index_bytes = os.path.getsize(path)
        self._mmap = np.memmap(path, dtype=np.uint8, mode="r")
        raw = bytes(self._mmap[index_off : index_off + n * _ROW.size])
        self.rows = [
            _ROW.unpack_from(raw, i * _ROW.size) for i in range(n)
        ]
        del index_bytes

    def __len__(self) -> int:
        return self.n

    def read(self, index: int) -> Tuple[np.ndarray, int]:
        offset, length, label, h, w, c = self.rows[index]
        start = self.data_off + offset
        payload = bytes(self._mmap[start : start + length])
        if self.compression:
            image = decompress_array(payload, self.compression)
        else:
            image = np.frombuffer(payload, dtype=np.uint8).reshape(h, w, c)
        return image, label


class FFCVLoader:
    """Quasi-random batched loader over a beton file."""

    name = "ffcv"

    def __init__(
        self,
        path: str,
        num_workers: int = 4,
        shuffle: bool = True,
        seed: Optional[int] = 0,
        compression: Optional[str] = "jpeg",
    ):
        self.reader = BetonReader(path, compression)
        self.num_workers = num_workers
        self.shuffle = shuffle
        self.seed = seed

    def _order(self) -> List[int]:
        order = list(range(len(self.reader)))
        if self.shuffle:
            # FFCV's quasi-random: shuffle page-sized blocks, then within
            rng = np.random.default_rng(self.seed)
            block = 64
            blocks = [
                order[i : i + block] for i in range(0, len(order), block)
            ]
            rng.shuffle(blocks)
            order = [i for b in blocks for i in b]
        return order

    def iter_batches(self, batch_size: int) -> Iterator[Dict]:
        order = self._order()
        stream = prefetched(
            order,
            lambda i: self.reader.read(i),
            num_workers=self.num_workers,
            inflight_limit=max(1, self.num_workers * 2),
        )
        batch_imgs: List[np.ndarray] = []
        batch_labels: List[int] = []
        for image, label in stream:
            batch_imgs.append(image)
            batch_labels.append(label)
            if len(batch_imgs) == batch_size:
                yield _collate(batch_imgs, batch_labels)
                batch_imgs, batch_labels = [], []
        if batch_imgs:
            yield _collate(batch_imgs, batch_labels)


def _collate(images: List[np.ndarray], labels: List[int]) -> Dict:
    shapes = {im.shape for im in images}
    return {
        "image": np.stack(images) if len(shapes) == 1 else images,
        "label": np.asarray(labels),
    }
